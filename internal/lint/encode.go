package lint

// Finding encoders for the d2dvet CLI: machine-readable JSON, SARIF 2.1.0
// for code-scanning upload, and GitHub workflow annotations for inline PR
// review. All three render the same Finding list the text mode prints.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column,omitempty"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// EncodeJSON writes the findings as a JSON array (never null: an empty
// run encodes as []).
func EncodeJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column,
			Analyzer: f.Analyzer, Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// sarif* model the minimal SARIF 2.1.0 subset code-scanning consumes: one
// run, one driver, one rule per analyzer, one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// EncodeSARIF writes the findings as a SARIF 2.1.0 log. The rule table
// lists every suite analyzer plus the driver's own "lint" rule (malformed
// or stale //lint:allow directives), so rule metadata resolves even for
// findings that did not fire.
func EncodeSARIF(w io.Writer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(Analyzers)+1)
	for _, a := range Analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "lint",
		ShortDescription: sarifMessage{Text: "suppression hygiene: //lint:allow directives need a reason and must still suppress something"},
	})
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: strings.ReplaceAll(f.Pos.Filename, "\\", "/")},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "d2dvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// githubEscape applies the workflow-command escaping rules: % first, then
// line breaks (and, for property values, the property separators).
func githubEscape(s string, property bool) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	if property {
		s = strings.ReplaceAll(s, ",", "%2C")
		s = strings.ReplaceAll(s, ":", "%3A")
	}
	return s
}

// EncodeGitHub writes one ::error workflow command per finding, so the
// CI lint job annotates the offending lines inline in the PR diff.
func EncodeGitHub(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintf(w, "::error file=%s,line=%d,title=%s::%s\n",
			githubEscape(strings.ReplaceAll(f.Pos.Filename, "\\", "/"), true),
			f.Pos.Line,
			githubEscape("d2dvet/"+f.Analyzer, true),
			githubEscape(f.Message, false))
	}
}
