package lint

import (
	"go/ast"
	"go/types"
)

// Rawrand forbids the unseeded global math/rand generators.
//
// Fault schedules (internal/faultnet), load arrival jitter and relay
// backoff all replay bit-for-bit because every random draw flows from an
// explicitly seeded *rand.Rand. One call to a package-level math/rand
// function reintroduces shared global state: runs stop reproducing,
// seeded chaos timelines diverge, and two components can perturb each
// other's streams. Constructors (rand.New, rand.NewSource, ...) are the
// sanctioned way in and stay allowed.
var Rawrand = &Analyzer{
	Name: "rawrand",
	Doc:  "no unseeded global math/rand functions; every randomness source must be an explicitly seeded *rand.Rand",
	Run:  runRawrand,
}

// randConstructors build seeded generators and are the allowed entry
// points into math/rand and math/rand/v2.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runRawrand(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand are fine — the receiver carries the
			// seed. Only package-level draws hit the global generator.
			if fn.Type().(*types.Signature).Recv() != nil || randConstructors[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(), "%s.%s draws from the unseeded global generator; use a seeded *rand.Rand so fault and load schedules replay bit-for-bit", path, fn.Name())
			return true
		})
	}
}
