// Package lint implements d2dvet, the project-specific static-analysis
// suite. It enforces the invariants the reproduction's guarantees rest on
// but that the compiler cannot see: simulation-clocked packages must not
// read the wall clock (walltime), every randomness source must be a seeded
// *rand.Rand (rawrand), no blocking network/channel operation may run
// while a mutex is held (lockheld), network-layer error returns from
// Close/Flush/Write must not be silently dropped (closecheck), and trace
// event kinds must be package-level constants (tracekey). The second
// generation guards the parallel-kernel work: map iteration must not feed
// order-sensitive sinks — trace events, trace recordings, report tables,
// digests — without an intervening sort (maporder), goroutines spawned by
// stoppable types need a shutdown edge (goroleak), a field touched through
// sync/atomic must never also be accessed plainly (atomicmix), and every
// Ticker/Timer needs a reachable Stop while time.After stays out of loops
// (tickerstop).
//
// The driver is stdlib-only: packages are parsed with go/parser and
// checked with go/types; external dependencies resolve through compiled
// export data from `go list -export`, so a full-tree run costs one type
// check per module package.
//
// Findings print as "file:line: [analyzer] message". A finding can be
// suppressed with a comment on the same line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself a finding.
package lint

import (
	"cmp"
	"fmt"
	"go/token"
	"path/filepath"
	"slices"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	// Pos locates the offending code.
	Pos token.Position
	// Analyzer names the rule that fired.
	Analyzer string
	// Message explains the violation and the invariant behind it.
	Message string
}

// String renders the canonical "file:line: [analyzer] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one named rule.
type Analyzer struct {
	// Name is the short identifier used in output and //lint:allow.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run reports findings for one package through the pass.
	Run func(*Pass)
}

// Analyzers is the full suite, in output order.
var Analyzers = []*Analyzer{
	Walltime, Rawrand, Lockheld, Closecheck, Tracekey,
	Maporder, Goroleak, Atomicmix, Tickerstop,
}

// Pass is one (analyzer, package) unit of work.
type Pass struct {
	// Analyzer is the running rule.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package
	// Cfg is the analyzer's configuration.
	Cfg AnalyzerConfig
	// Module is the module path (locates internal/trace for tracekey).
	Module string
	// Univ is every module package loaded in this run; lockheld's
	// blocking-propagation fixed point runs over it.
	Univ []*Package

	shared   *shared
	findings *[]Finding
}

// Reportf records one finding unless its file is allowlisted.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Cfg.allowsFile(filepath.Base(position.Filename)) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run loads the packages matched by patterns and applies every configured
// analyzer, returning the surviving (unsuppressed, deduplicated) findings
// sorted by position. File names are reported relative to the module root.
func (l *Loader) Run(cfg *Config, patterns []string) ([]Finding, error) {
	roots, err := l.LoadPatterns(patterns)
	if err != nil {
		return nil, err
	}
	return l.analyze(cfg, roots), nil
}

// analyze applies the suite to the given packages (already loaded).
func (l *Loader) analyze(cfg *Config, roots []*Package) []Finding {
	sh := &shared{}
	var findings []Finding
	univ := l.ModulePackages()
	for _, a := range Analyzers {
		ac := cfg.For(a.Name)
		for _, pkg := range roots {
			if !ac.appliesToPackage(pkg.Path) {
				continue
			}
			a.Run(&Pass{
				Analyzer: a, Pkg: pkg, Cfg: ac, Module: cfg.Module,
				Univ: univ, shared: sh, findings: &findings,
			})
		}
	}
	ds := collectDirectives(roots)
	findings = ds.applySuppressions(findings)
	if cfg.ReportUnusedAllows {
		findings = append(findings, ds.staleFindings()...)
	}
	findings = dedupe(findings)
	for i := range findings {
		if rel, err := filepath.Rel(l.ModuleDir, findings[i].Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			findings[i].Pos.Filename = rel
		}
	}
	slices.SortFunc(findings, func(a, b Finding) int {
		if c := cmp.Compare(a.Pos.Filename, b.Pos.Filename); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Pos.Line, b.Pos.Line); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Analyzer, b.Analyzer); c != 0 {
			return c
		}
		return cmp.Compare(a.Message, b.Message)
	})
	return findings
}

// dedupe removes exact duplicate findings.
func dedupe(fs []Finding) []Finding {
	seen := make(map[string]bool, len(fs))
	out := fs[:0]
	for _, f := range fs {
		key := f.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, f)
	}
	return out
}
