// Package tracekey exercises the tracekey analyzer: ad-hoc event kinds
// are flagged wherever a Kind flows (composite literal, field assignment,
// call argument); package-level constants, constant-fed locals, parameters
// and suppressed sites are not.
package tracekey

import "d2dhb/internal/trace"

// kindLocalFlush is a package-level constant and therefore enumerable.
const kindLocalFlush = trace.Kind("local-flush")

func emitGood(tr trace.Tracer, dev string) {
	trace.Emit(tr, trace.Event{Device: dev, Kind: trace.KindGenerated})
}

func emitLocalConst(tr trace.Tracer) {
	trace.Emit(tr, trace.Event{Kind: kindLocalFlush})
}

func emitBranch(tr trace.Tracer, fallback bool) {
	kind := trace.KindDirectSend
	if fallback {
		kind = trace.KindFallback
	}
	trace.Emit(tr, trace.Event{Kind: kind}) // every assignment is a constant
}

func emitParam(tr trace.Tracer, k trace.Kind) {
	trace.Emit(tr, trace.Event{Kind: k}) // parameters are checked at call sites
}

func emitBad(tr trace.Tracer, dev string) {
	trace.Emit(tr, trace.Event{Device: dev, Kind: trace.Kind("hb-" + dev)}) // want `not a package-level constant`
}

func emitLiteral(tr trace.Tracer) {
	trace.Emit(tr, trace.Event{Kind: "raw-string"}) // want `not a package-level constant`
}

func mutateBad(ev *trace.Event) {
	ev.Kind = trace.Kind("mutated") // want `not a package-level constant`
}

func record(k trace.Kind) {
	_ = k
}

func callSites() {
	record(trace.KindAck)
	record("oops") // want `not a package-level constant`
}

func emitDebug(tr trace.Tracer, label string) {
	//lint:allow tracekey debug-only kind never reaches the offline analyzers
	trace.Emit(tr, trace.Event{Kind: trace.Kind(label)})
}
