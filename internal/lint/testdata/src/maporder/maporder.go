// Package maporder exercises the maporder analyzer: map iteration whose
// body feeds an ordered sink — directly, through a helper (call-graph
// propagation), or into a digest — is flagged; collect-sort-range, slice
// iteration, sinkless loops and goroutine bodies are not.
package maporder

import (
	"hash/fnv"
	"sort"
	"time"

	"d2dhb/internal/rec"
	"d2dhb/internal/trace"
)

// emitOne is an ordered sink by propagation: it emits a trace event.
func emitOne(tr trace.Tracer, dev string) {
	trace.Emit(tr, trace.Event{Device: dev, Kind: trace.KindGenerated})
}

// emitTwice propagates one level further.
func emitTwice(tr trace.Tracer, dev string) {
	emitOne(tr, dev)
	emitOne(tr, dev)
}

func directEmit(tr trace.Tracer, devs map[string]bool) {
	for dev := range devs { // want `map iteration order is nondeterministic but this loop emits a trace event`
		trace.Emit(tr, trace.Event{Device: dev, Kind: trace.KindGenerated})
	}
}

func propagatedEmit(tr trace.Tracer, devs map[string]bool) {
	for dev := range devs { // want `calls golden.test/maporder.emitTwice, which`
		emitTwice(tr, dev)
	}
}

func recordTimeouts(r *rec.Recorder, pending map[uint64]int64, now time.Time) {
	for seq := range pending { // want `records a trace event`
		r.Record(rec.EvTimeout, 0, seq, now)
	}
}

func digestFeed(weights map[string]int) uint64 {
	h := fnv.New64a()
	for k := range weights { // want `feeds a digest`
		h.Write([]byte(k))
	}
	return h.Sum64()
}

// sortedEmit is the canonical fix: collect, sort, then range the slice.
func sortedEmit(tr trace.Tracer, devs map[string]bool) {
	keys := make([]string, 0, len(devs))
	for dev := range devs {
		keys = append(keys, dev)
	}
	sort.Strings(keys)
	for _, dev := range keys {
		trace.Emit(tr, trace.Event{Device: dev, Kind: trace.KindGenerated})
	}
}

// counters only aggregates; nothing ordered happens inside the loop.
func counters(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// spawned goroutines emit on their own schedule, not the loop's.
func goBody(tr trace.Tracer, devs map[string]bool, done chan struct{}) {
	for dev := range devs {
		go func(d string) {
			emitOne(tr, d)
			done <- struct{}{}
		}(dev)
	}
}

// suppressed documents a deliberate exception.
func suppressed(tr trace.Tracer, devs map[string]bool) {
	//lint:allow maporder debug dump only, never diffed or digested
	for dev := range devs {
		emitOne(tr, dev)
	}
}
