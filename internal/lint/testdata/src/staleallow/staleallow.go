// Package staleallow feeds TestUnusedAllowAudit: one directive earns its
// keep by suppressing a real rawrand finding; the walltime directive
// suppresses nothing and must be reported as stale.
package staleallow

import "math/rand"

func jitter() float64 {
	//lint:allow rawrand demo package, determinism irrelevant here
	return rand.Float64()
}

func steady() float64 {
	//lint:allow walltime sim clock only, honest
	return 1.0
}
