// Package closecheck exercises the closecheck analyzer: dropped errors
// from Conn.Write, Close and Flush are flagged; returned, checked or
// explicitly discarded errors are not, and //lint:allow silences an
// intentional drop.
package closecheck

import (
	"bufio"
	"net"
)

func sendRaw(conn net.Conn, b []byte) {
	conn.Write(b) // want `expression statement discards the error from net\.Conn\.Write`
}

func leakyClose(conn net.Conn) {
	defer conn.Close() // want `deferred call discards the error from net\.Conn\.Close`
}

func flushAll(w *bufio.Writer) {
	w.Flush() // want `expression statement discards the error from \*bufio\.Writer\.Flush`
}

func shutdown(conn net.Conn) error {
	return conn.Close() // error is propagated
}

func sendChecked(conn net.Conn, b []byte) error {
	_, err := conn.Write(b) // error is captured
	return err
}

func bestEffort(conn net.Conn) {
	_ = conn.Close() // explicit, review-visible discard
}

func closeAtExit(ln net.Listener) {
	defer ln.Close() //lint:allow closecheck listener close at process exit has no recovery path
}
