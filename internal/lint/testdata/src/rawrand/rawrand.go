// Package rawrand exercises the rawrand analyzer: package-level math/rand
// draws are flagged, seeded generators and constructors are not, and
// //lint:allow silences an intentional global use.
package rawrand

import "math/rand"

func newRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors are the sanctioned entry
}

func jitter(rng *rand.Rand) float64 {
	return rng.Float64() // receiver carries the seed
}

func badJitter() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the unseeded global generator`
}

func badPick(n int) int {
	return rand.Intn(n) // want `rand\.Intn draws from the unseeded global generator`
}

func shuffle(xs []int) {
	//lint:allow rawrand demo helper, replayability deliberately out of scope
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
