// Package walltime exercises the walltime analyzer: package-level
// wall-clock reads are flagged, duration arithmetic and time.Time methods
// are not, and //lint:allow silences an intentional use.
package walltime

import "time"

// bootEpoch is stamped once at process start, outside any simulated
// timeline.
var bootEpoch = time.Now() //lint:allow walltime process boot stamp is outside the simulated timeline

func deadline(now time.Time, period time.Duration) time.Time {
	return now.Add(3 * period) // pure arithmetic on an injected timestamp
}

func isPast(t, now time.Time) bool {
	return now.After(t) // time.Time method, not the package-level After
}

func tick() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func wait(d time.Duration) {
	time.Sleep(d) // want `time\.Sleep reads the wall clock`
}

func expiry(d time.Duration) <-chan time.Time {
	return time.After(d) // want `time\.After reads the wall clock`
}

func age() time.Duration {
	return time.Since(bootEpoch) // want `time\.Since reads the wall clock`
}
