// Package atomicmix exercises the atomicmix analyzer: a field whose
// address feeds a sync/atomic call must never be read or written plainly
// anywhere in the package. Typed atomics and fields that never mix are
// fine.
package atomicmix

import "sync/atomic"

// stats mixes atomic and plain access on hits — the data race the
// analyzer exists for — while misses stays consistently atomic.
type stats struct {
	hits   uint64
	misses uint64
}

func (s *stats) hit() {
	atomic.AddUint64(&s.hits, 1)
}

func (s *stats) miss() {
	atomic.AddUint64(&s.misses, 1)
}

func (s *stats) snapshot() (uint64, uint64) {
	h := s.hits // want `field hits is accessed through sync/atomic \(line 17\) but read/written plainly here`
	m := atomic.LoadUint64(&s.misses)
	return h, m
}

func (s *stats) reset() {
	s.hits = 0 // want `field hits is accessed through sync/atomic`
	atomic.StoreUint64(&s.misses, 0)
}

// typedCounter is the project standard: the typed API makes the mix
// impossible, so the analyzer ignores it.
type typedCounter struct {
	n atomic.Uint64
}

func (c *typedCounter) inc() { c.n.Add(1) }

func (c *typedCounter) read() uint64 { return c.n.Load() }

// plainOnly never touches sync/atomic; mutex-guarded plain access is a
// different analyzer's business.
type plainOnly struct {
	n int
}

func (p *plainOnly) bump() { p.n++ }

// suppressed documents a deliberate single-threaded fast path.
type suppressed struct {
	n uint64
}

func (s *suppressed) inc() {
	atomic.AddUint64(&s.n, 1)
}

func (s *suppressed) initOnce() {
	s.n = 0 //lint:allow atomicmix constructor runs before any goroutine sees the struct
}
