// Package goroleak exercises the goroleak analyzer: goroutines spawned
// by types with Stop/Close/Shutdown must have a shutdown edge — a
// done-channel or context receive, or a WaitGroup.Done the stopper can
// wait on. Timer channels do not count as edges; types with no teardown
// method are out of scope.
package goroleak

import (
	"context"
	"sync"
	"time"
)

// server shuts its goroutines down properly through a done channel and a
// WaitGroup.
type server struct {
	done chan struct{}
	wg   sync.WaitGroup
}

func (s *server) Start() {
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		<-s.done
	}()
	go s.loop()
}

func (s *server) loop() {
	defer s.wg.Done()
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
		}
	}
}

func (s *server) Stop() {
	close(s.done)
	s.wg.Wait()
}

// ctxWorker hands its goroutine a context; Done() is the edge.
type ctxWorker struct {
	cancel context.CancelFunc
}

func (w *ctxWorker) Start(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func (w *ctxWorker) Close() error {
	w.cancel()
	return nil
}

// leaker has a Stop but its goroutine never hears about it.
type leaker struct {
	n int
}

func (l *leaker) Start() {
	go func() { // want `goroutine spawned by \(leaker\).Start has no shutdown edge`
		for {
			time.Sleep(time.Second)
			l.n++
		}
	}()
}

func (l *leaker) Stop() {}

// tickLeaker only ever waits on a timer channel — the ticker wakes it, it
// never stops it.
type tickLeaker struct{}

func (t *tickLeaker) Start() {
	go func() { // want `goroutine spawned by \(tickLeaker\).Start has no shutdown edge`
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			<-tick.C
		}
	}()
}

func (t *tickLeaker) Shutdown() {}

// methodLeaker spawns a named method with no edge; the analyzer chases
// the same-package body.
type methodLeaker struct{ n int }

func (m *methodLeaker) Start() {
	go m.poll() // want `goroutine spawned by \(methodLeaker\).Start has no shutdown edge`
}

func (m *methodLeaker) poll() {
	for {
		time.Sleep(time.Second)
		m.n++
	}
}

func (m *methodLeaker) Close() {}

// freeRunner has no Stop/Close/Shutdown: its goroutines are process-
// lifetime by design and out of scope.
type freeRunner struct{ n int }

func (f *freeRunner) Start() {
	go func() {
		for {
			time.Sleep(time.Second)
			f.n++
		}
	}()
}

// suppressed documents a deliberate fire-and-forget goroutine.
type suppressed struct{}

func (s *suppressed) Start() {
	//lint:allow goroleak goroutine exits with its one send, nothing to stop
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
}

func (s *suppressed) Stop() {}
