// Package tickerstop exercises the tickerstop analyzer: unstopped
// tickers/timers, time.After in loops and time.Tick are flagged; deferred
// stops, field tickers stopped by an owner method, escaping values and
// one-shot time.After are not.
package tickerstop

import "time"

func deferredStop(done chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
	}
}

func exitPathStop(done chan struct{}) bool {
	t := time.NewTimer(time.Second)
	select {
	case <-done:
		t.Stop()
		return false
	case <-t.C:
		return true
	}
}

func leakedLocal() {
	t := time.NewTicker(time.Second) // want `has no reachable Stop in this function`
	<-t.C
}

func leakedTimer() {
	t := time.NewTimer(time.Second) // want `time.Timer assigned to t has no reachable Stop`
	<-t.C
}

func afterInLoop(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case <-time.After(time.Second): // want `time.After inside a loop`
		}
	}
}

func afterInRange(xs []int) {
	for range xs {
		<-time.After(time.Millisecond) // want `time.After inside a loop`
	}
}

// afterOnce is the legitimate one-shot use.
func afterOnce(done chan struct{}) bool {
	select {
	case <-done:
		return false
	case <-time.After(time.Second):
		return true
	}
}

func tick() {
	<-time.Tick(time.Second) // want `time.Tick leaks its ticker`
}

// poller owns a field ticker; Stop releases it.
type poller struct {
	t *time.Ticker
}

func (p *poller) start() {
	p.t = time.NewTicker(time.Second)
}

func (p *poller) Stop() {
	p.t.Stop()
}

// leaky stores a ticker in a field no function ever stops.
type leaky struct {
	t *time.Ticker
}

func (l *leaky) start() {
	l.t = time.NewTicker(time.Second) // want `field t is never stopped by any function in this package`
}

// escapes hands the ticker off; the caller owns the Stop.
func escapes() *time.Ticker {
	t := time.NewTicker(time.Second)
	return t
}

func handedOff(stop func(*time.Ticker)) {
	t := time.NewTicker(time.Second)
	stop(t)
}

func suppressed() {
	t := time.NewTicker(time.Second) //lint:allow tickerstop process-lifetime ticker, stops at exit
	<-t.C
}
