// Package lockheld exercises the lockheld analyzer: network IO, channel
// operations and transitively-blocking helpers under a held mutex are
// flagged; unlocked IO, goroutine launches and suppressed sites are not.
package lockheld

import (
	"net"
	"sync"
	"time"
)

type agent struct {
	mu      sync.Mutex
	conn    net.Conn
	out     chan []byte
	pending int
}

func (a *agent) flushLocked(b []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, err := a.conn.Write(b) // want `call to net\.Conn\.Write .* while a\.mu is held`
	return err
}

func (a *agent) publish(b []byte) {
	a.mu.Lock()
	a.out <- b // want `channel send while a\.mu is held`
	a.mu.Unlock()
}

func (a *agent) publishSafe(b []byte) {
	a.mu.Lock()
	a.pending++
	a.mu.Unlock()
	a.out <- b // lock released before the send
}

// backoff sleeps, so every caller holding a lock across it blocks too.
func backoff() {
	time.Sleep(time.Millisecond)
}

func (a *agent) retry() {
	a.mu.Lock()
	defer a.mu.Unlock()
	backoff() // want `call to golden\.test/lockheld\.backoff, which sleeps`
}

func (a *agent) notifyAsync(b []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	go func() { a.out <- b }() // the spawned goroutine blocks itself, not the holder
}

func (a *agent) handshake() {
	a.mu.Lock()
	defer a.mu.Unlock()
	//lint:allow lockheld startup handshake runs before any goroutine can contend
	_, _ = a.conn.Write([]byte("hello"))
}
