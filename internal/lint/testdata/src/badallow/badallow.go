// Package badallow holds a reason-less //lint:allow directive: the driver
// must report the directive itself and keep the underlying finding alive.
package badallow

import "math/rand"

func roll() int {
	//lint:allow rawrand
	return rand.Intn(6)
}
