package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package: its syntax, its types and
// the shared file set. Test files are never loaded — the analyzers enforce
// production-code invariants, and tests legitimately sleep, use wall time
// and drive randomness.
type Package struct {
	// Path is the import path ("d2dhb/internal/relaynet").
	Path string
	// Dir is the directory holding the sources.
	Dir string
	// Fset is the loader-wide file set (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the checked package.
	Types *types.Package
	// Info holds the type-checker's fact maps for Files.
	Info *types.Info
}

// pkgMeta is the subset of `go list -json` output the loader consumes.
type pkgMeta struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
}

// Loader parses and type-checks module packages from source, resolving
// every external dependency (the standard library) through compiled export
// data obtained from `go list -export`. It is stdlib-only — go/parser,
// go/types and go/importer, no x/tools — and memoizes checked packages so
// one run type-checks each package exactly once.
type Loader struct {
	// ModuleDir is the directory containing go.mod.
	ModuleDir string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	// Fset positions every parsed file.
	Fset *token.FileSet

	metas   map[string]*pkgMeta // go list facts by import path
	checked map[string]*Package // type-checked module packages
	order   []string            // insertion order of checked
	loading map[string]bool     // cycle guard
	gc      types.Importer      // export-data importer for non-module deps
}

// NewLoader locates the enclosing module of dir and prepares a loader.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		Fset:       token.NewFileSet(),
		metas:      make(map[string]*pkgMeta),
		checked:    make(map[string]*Package),
		loading:    make(map[string]bool),
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", l.lookupExport)
	return l, nil
}

// findModule walks up from dir to the first go.mod and returns its
// directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// golist runs `go list -json` with the given extra arguments in the module
// directory and decodes the JSON stream.
func (l *Loader) golist(args ...string) ([]*pkgMeta, error) {
	full := append([]string{"list", "-json=ImportPath,Dir,GoFiles,Export,Standard,Module"}, args...)
	cmd := exec.Command("go", full...)
	cmd.Dir = l.ModuleDir
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var metas []*pkgMeta
	dec := json.NewDecoder(&out)
	for {
		m := new(pkgMeta)
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// register records go list facts, preferring entries that carry export
// data over ones that do not.
func (l *Loader) register(metas []*pkgMeta) {
	for _, m := range metas {
		if prev, ok := l.metas[m.ImportPath]; !ok || (prev.Export == "" && m.Export != "") {
			l.metas[m.ImportPath] = m
		}
	}
}

// LoadPatterns resolves go package patterns (e.g. "./...") and returns the
// matched module packages, parsed and type-checked. The full dependency
// closure's export data is fetched in one `go list -export -deps` call so
// later imports hit the cache.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	deps, err := l.golist(append([]string{"-export", "-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	l.register(deps)
	roots, err := l.golist(patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, m := range roots {
		if !l.isModulePath(m.ImportPath) {
			continue
		}
		p, err := l.load(m.ImportPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ModulePackages returns every module package checked so far, in load
// order.
func (l *Loader) ModulePackages() []*Package {
	out := make([]*Package, 0, len(l.order))
	for _, path := range l.order {
		out = append(out, l.checked[path])
	}
	return out
}

func (l *Loader) isModulePath(p string) bool {
	return p == l.ModulePath || strings.HasPrefix(p, l.ModulePath+"/")
}

// Import implements types.Importer: module packages are checked from
// source (memoized), "unsafe" is the magic package, everything else comes
// from compiled export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isModulePath(path) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.gc.Import(path)
}

// lookupExport opens a package's compiled export data, consulting go list
// on demand for paths outside the preloaded closure.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	m := l.metas[path]
	if m == nil || m.Export == "" {
		metas, err := l.golist("-export", path)
		if err != nil {
			return nil, err
		}
		l.register(metas)
		m = l.metas[path]
	}
	if m == nil || m.Export == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(m.Export)
}

// load parses and type-checks one module package by import path.
func (l *Loader) load(path string) (*Package, error) {
	if p := l.checked[path]; p != nil {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	m := l.metas[path]
	if m == nil {
		metas, err := l.golist(path)
		if err != nil {
			return nil, err
		}
		l.register(metas)
		if m = l.metas[path]; m == nil {
			return nil, fmt.Errorf("lint: package %q not found", path)
		}
	}
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.check(path, m.Dir, files)
}

// LoadDir parses and type-checks every non-test .go file in dir as a
// package with the given synthetic import path. Used by the golden-file
// tests to load testdata packages that `go list` does not see.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.check(asPath, dir, files)
}

// check type-checks one parsed package and memoizes it.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, errs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.checked[path] = p
	l.order = append(l.order, path)
	return p, nil
}
