package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroleak forbids shutdown-less goroutines in stoppable types.
//
// A type that offers Stop/Close/Shutdown promises its resources die with
// it. A `go` statement in one of its methods whose goroutine has no
// shutdown edge — no receive on a done channel or context, no
// WaitGroup.Done the stopper can Wait on — outlives the owner: it keeps
// polling, keeps a connection open, or leaks outright after every
// restart cycle of the cluster. The analyzer inspects the spawned body
// (function literal or same-package callee, following same-package calls)
// for any such edge. Receives on time.Ticker/Timer channels and time.After
// do not count: a timer firing wakes the goroutine but never tells it to
// exit.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutines spawned by a type with Stop/Close/Shutdown need a shutdown edge (done channel, context or WaitGroup)",
	Run:  runGoroleak,
}

// stopperNames are the conventional teardown method names.
var stopperNames = map[string]bool{"Stop": true, "Close": true, "Shutdown": true}

// namedRecv resolves a method declaration's receiver to its named type.
func namedRecv(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return nil
	}
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	t := fn.Type().(*types.Signature).Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func runGoroleak(p *Pass) {
	// Named types with a teardown method, and every function body in the
	// package (to chase go'd methods and helpers).
	stoppable := make(map[*types.Named]string)
	bodies := make(map[*types.Func]*ast.BlockStmt)
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd.Body
			}
			if named := namedRecv(p.Pkg.Info, fd); named != nil && stopperNames[fd.Name.Name] {
				stoppable[named] = fd.Name.Name
			}
		}
	}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			named := namedRecv(p.Pkg.Info, fd)
			if named == nil {
				continue
			}
			stopper, ok := stoppable[named]
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body := spawnedBody(p.Pkg.Info, bodies, gs)
				if body == nil {
					return true // spawned code is out of sight; trust it
				}
				if !hasShutdownEdge(p.Pkg.Info, bodies, body, make(map[*ast.BlockStmt]bool)) {
					p.Reportf(gs.Pos(), "goroutine spawned by (%s).%s has no shutdown edge — no done-channel/context receive, no WaitGroup.Done — so %s.%s cannot stop it and it outlives its owner", named.Obj().Name(), fd.Name.Name, named.Obj().Name(), stopper)
				}
				return true
			})
		}
	}
}

// spawnedBody resolves the body the go statement runs: a function
// literal's own body, or the declaration of a same-package callee.
func spawnedBody(info *types.Info, bodies map[*types.Func]*ast.BlockStmt, gs *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := callee(info, gs.Call); fn != nil {
		return bodies[fn]
	}
	return nil
}

// hasShutdownEdge reports whether the body (following same-package calls)
// contains a way for the owner to end the goroutine: a channel receive,
// select or range on anything but a timer channel, or a WaitGroup.Done.
func hasShutdownEdge(info *types.Info, bodies map[*types.Func]*ast.BlockStmt, body *ast.BlockStmt, visited map[*ast.BlockStmt]bool) bool {
	if visited[body] {
		return false
	}
	visited[body] = true
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && stoppableChan(info, x.X) {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && stoppableChan(info, x.X) {
					found = true
				}
			}
		case *ast.CallExpr:
			fn := callee(info, x)
			if fn == nil {
				return true
			}
			if fullFuncName(fn) == "sync.WaitGroup.Done" {
				found = true
				return false
			}
			if inner, ok := bodies[fn]; ok && hasShutdownEdge(info, bodies, inner, visited) {
				found = true
			}
		}
		return !found
	})
	return found
}

// stoppableChan reports whether receiving on the expression can be an
// owner-driven shutdown signal. Timer-flavored channels cannot: a Ticker
// or After firing wakes the goroutine on schedule, it never ends it.
func stoppableChan(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok && sel.Sel.Name == "C" {
		if tv, ok := info.Types[sel.X]; ok && isTimeTickerOrTimer(tv.Type) {
			return false
		}
	}
	if call, ok := e.(*ast.CallExpr); ok {
		fn := callee(info, call)
		if timeFunc(fn, "After") || timeFunc(fn, "Tick") {
			return false
		}
	}
	return true
}

// isTimeTickerOrTimer matches time.Ticker / time.Timer (or pointers).
func isTimeTickerOrTimer(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "time" &&
		(named.Obj().Name() == "Ticker" || named.Obj().Name() == "Timer")
}
