package lint

import (
	"go/ast"
	"go/types"
)

// Closecheck forbids silently dropped errors from Close, Flush and
// net.Conn Write.
//
// On the real TCP stack a failed Close leaks the peer's half of the
// connection, a failed Flush drops batched heartbeats that the relay
// already acked locally, and a failed Conn.Write is the only signal that
// a peer went away. Each of those must be handled or explicitly
// discarded with `_ =` so the discard is visible in review; a bare
// `defer f.Close()` or expression-statement call hides it.
var Closecheck = &Analyzer{
	Name: "closecheck",
	Doc:  "no unchecked error returns from Conn.Write, Close or Flush in the network layer",
	Run:  runClosecheck,
}

func runClosecheck(p *Pass) {
	ifaces := resolveNetIfaces(p.Univ)
	check := func(call *ast.CallExpr, how string) {
		fn := callee(p.Pkg.Info, call)
		if fn == nil {
			return
		}
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			return
		}
		switch fn.Name() {
		case "Close", "Flush":
			// Only the canonical func() error shape: Close(ctx) variants
			// and multi-result flushes are project-specific enough to
			// handle explicitly.
			if sig.Params().Len() != 0 || !lastResultIsError(sig) || sig.Results().Len() != 1 {
				return
			}
		case "Write":
			if !implementsIface(sig.Recv().Type(), ifaces.conn) || !lastResultIsError(sig) {
				return
			}
		default:
			return
		}
		p.Reportf(call.Pos(), "%s discards the error from %s.%s; handle it or discard explicitly with `_ =` so the drop survives review", how, recvTypeName(sig), fn.Name())
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					check(call, "expression statement")
				}
			case *ast.DeferStmt:
				check(st.Call, "deferred call")
			case *ast.GoStmt:
				check(st.Call, "go statement")
			}
			return true
		})
	}
}

// lastResultIsError reports whether the signature's final result is error.
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// recvTypeName renders the receiver type for messages ("*relaynet.Conn").
func recvTypeName(sig *types.Signature) string {
	return types.TypeString(sig.Recv().Type(), func(p *types.Package) string {
		return p.Name()
	})
}
