package lint

import "testing"

// TestRepositoryIsClean lints the real module with the repository policy
// and requires zero unsuppressed findings — the same gate `make lint` and
// CI enforce. A failure here names the exact file:line to fix (or to
// justify with //lint:allow <analyzer> <reason>).
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow; skipped with -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(l.ModulePath)
	// The suppression audit runs here too: a //lint:allow that stopped
	// suppressing anything must be deleted, not left to mask the next
	// finding at its line.
	cfg.ReportUnusedAllows = true
	findings, err := l.Run(cfg, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f.String())
	}
}

// TestAnalyzerRegistry pins the suite roster: names are the //lint:allow
// and CLI vocabulary, so adding or renaming an analyzer must be deliberate.
func TestAnalyzerRegistry(t *testing.T) {
	wantNames := []string{
		"walltime", "rawrand", "lockheld", "closecheck", "tracekey",
		"maporder", "goroleak", "atomicmix", "tickerstop",
	}
	if len(Analyzers) != len(wantNames) {
		t.Fatalf("suite has %d analyzers, want %d", len(Analyzers), len(wantNames))
	}
	for i, a := range Analyzers {
		if a.Name != wantNames[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, wantNames[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc line", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}
