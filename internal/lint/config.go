package lint

import (
	"path/filepath"
	"strings"
)

// AnalyzerConfig scopes one analyzer.
type AnalyzerConfig struct {
	// Packages restricts the analyzer to import paths matching one of
	// these patterns (exact path, or a "prefix/..." wildcard). Empty means
	// every package.
	Packages []string
	// AllowFiles suppresses every finding in files whose base name
	// matches one of these globs.
	AllowFiles []string
	// ExtraBlocking (lockheld only) names additional functions treated as
	// blocking, as "import/path.Func" or "import/path.Type.Method".
	ExtraBlocking []string
	// ExtraOrdered (maporder only) names additional functions treated as
	// order-sensitive sinks, in the same "import/path.Func" or
	// "import/path.Type.Method" form.
	ExtraOrdered []string
}

// appliesToPackage reports whether the analyzer covers the import path.
func (c AnalyzerConfig) appliesToPackage(path string) bool {
	if len(c.Packages) == 0 {
		return true
	}
	for _, pat := range c.Packages {
		if matchPattern(pat, path) {
			return true
		}
	}
	return false
}

// matchPattern matches an import path against an exact pattern or a
// "prefix/..." wildcard.
func matchPattern(pat, path string) bool {
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		return path == rest || strings.HasPrefix(path, rest+"/")
	}
	return pat == path
}

// allowsFile reports whether findings in the file (base name) are
// allowlisted away.
func (c AnalyzerConfig) allowsFile(base string) bool {
	for _, glob := range c.AllowFiles {
		if ok, err := filepath.Match(glob, base); err == nil && ok {
			return true
		}
	}
	return false
}

// Config is the suite configuration: the module path plus one
// AnalyzerConfig per analyzer name.
type Config struct {
	// Module is the module path (used to locate internal/trace and to
	// build default scopes).
	Module string
	// ByAnalyzer maps analyzer name → configuration. A missing entry
	// means "all packages, no allowances".
	ByAnalyzer map[string]AnalyzerConfig
	// ReportUnusedAllows audits the suppressions themselves: every
	// well-formed //lint:allow that suppressed nothing in the run becomes
	// a finding (d2dvet -unused-allows; CI runs with this on).
	ReportUnusedAllows bool
}

// For returns the configuration for an analyzer name.
func (c *Config) For(name string) AnalyzerConfig {
	if c.ByAnalyzer == nil {
		return AnalyzerConfig{}
	}
	return c.ByAnalyzer[name]
}

// DefaultConfig is the repository policy.
//
//   - walltime covers every simulation-clocked package: the deterministic
//     kernel and everything driven by it. The real-time stack (relaynet,
//     loadgen, faultnet), the wire protocol and the CLIs legitimately use
//     wall time and are out of scope. internal/telemetry is in scope even
//     though real-time code feeds it: the registry must stay clock-free so
//     sim-clocked packages can record into it from injected instants.
//   - rawrand, lockheld, closecheck and tracekey cover the whole module.
//   - lockheld additionally treats the hbproto frame codec as blocking:
//     WriteFrame/ReadFrame perform connection IO, so calling them with a
//     mutex held stalls every other goroutine contending for it. The
//     cluster control plane's HTTP methods (config refresh, drain
//     handoff, membership ops) and the loadgen metric scrapers get the
//     same treatment: holding a lock across one of them stalls every
//     routing party contending for that lock through a reshard.
func DefaultConfig(module string) *Config {
	ip := func(s string) string { return module + "/" + s }
	simPackages := []string{
		module, // root facade: builds and runs simulations
		ip("internal/core"),
		ip("internal/sched"),
		ip("internal/scenario"),
		ip("internal/matching"),
		ip("internal/energy"),
		ip("internal/simtime"),
		ip("internal/d2d"),
		ip("internal/device"),
		ip("internal/presence"),
		ip("internal/rrc"),
		ip("internal/cellular"),
		ip("internal/radio"),
		ip("internal/geo"),
		ip("internal/hbmsg"),
		ip("internal/metrics"),
		ip("internal/experiments"),
		ip("internal/telemetry"),
		// rec and benchcmp are clock-free by design: every instant in a
		// trace or bench report is caller-supplied, so replays and
		// comparisons stay deterministic.
		ip("internal/rec"),
		ip("internal/benchcmp"),
	}
	return &Config{
		Module: module,
		ByAnalyzer: map[string]AnalyzerConfig{
			"walltime": {Packages: simPackages},
			"lockheld": {ExtraBlocking: []string{
				ip("internal/hbproto") + ".WriteFrame",
				ip("internal/hbproto") + ".ReadFrame",
				ip("internal/cluster") + ".Client.Refresh",
				ip("internal/cluster") + ".Router.Drain",
				ip("internal/cluster") + ".Router.Evict",
				ip("internal/cluster") + ".Router.Join",
				ip("internal/loadgen") + ".ScrapeDump",
				ip("internal/loadgen") + ".ScrapeDumpURL",
			}},
		},
	}
}
