package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicmix forbids mixing sync/atomic and plain access on one field.
//
// A field updated through atomic.AddUint64(&s.n, 1) but read as s.n
// elsewhere is a data race the moment two goroutines touch it, and the
// race detector only catches the schedules it happens to see. The typed
// atomics (atomic.Uint64 et al.) make the mix impossible by construction
// — the project standard — so the analyzer only fires on the old-style
// pointer API: any field whose address is passed to a sync/atomic
// function must never appear in a plain selector anywhere in the
// package.
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a struct field accessed through sync/atomic must not also be read or written plainly",
	Run:  runAtomicmix,
}

func runAtomicmix(p *Pass) {
	// Pass 1: fields whose address feeds a sync/atomic call, and the
	// selector nodes inside those calls (exempt from pass 2).
	atomicFields := make(map[*types.Var]token.Pos)
	inAtomicCall := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(p.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, a := range call.Args {
				ue, ok := ast.Unparen(a).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Var); ok && fv.IsField() {
					if _, seen := atomicFields[fv]; !seen {
						atomicFields[fv] = sel.Pos()
					}
					inAtomicCall[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	// Pass 2: every plain selector on one of those fields.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			fv, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Var)
			if !ok || !fv.IsField() {
				return true
			}
			atPos, ok := atomicFields[fv]
			if !ok {
				return true
			}
			at := p.Pkg.Fset.Position(atPos)
			p.Reportf(sel.Sel.Pos(), "field %s is accessed through sync/atomic (line %d) but read/written plainly here — that is a data race; use the atomic API on every access, or a typed atomic.%s", fv.Name(), at.Line, typedAtomicFor(fv.Type()))
			return true
		})
	}
}

// typedAtomicFor suggests the typed replacement for a field type.
func typedAtomicFor(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		case types.Bool:
			return "Bool"
		}
	}
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return "Pointer"
	}
	return "Value"
}
