// Package rec defines a compact, versioned trace format for heartbeat
// workloads: the per-heartbeat arrival timeline of one real run (client
// table, fault-window markers, varint/delta-encoded send/ack/timeout
// events), a concurrency-safe recorder the load generator and chaos suite
// hook into, and the replay metrics/parity report that let the identical
// timeline be driven through both the discrete-event simulator and the
// live TCP stack. One captured "bad day" becomes a permanent regression
// workload, and sim-vs-real divergence on the same trace becomes a
// measurable parity metric.
//
// The package itself is clock-free: every recorded instant is passed in by
// the caller, so the simulator can feed virtual instants and the real
// stack wall instants through the same API.
package rec

import (
	"fmt"
	"hash/fnv"
	"time"
)

// Path classifies how a client's heartbeats travelled in the recorded run.
type Path uint8

// Client paths.
const (
	// PathDirect heartbeats went straight to the presence server over the
	// client's own connection (the paper's "original system" path).
	PathDirect Path = iota
	// PathRelayed heartbeats were forwarded through a relay agent running
	// Algorithm 1.
	PathRelayed
	// PathTrunked heartbeats were multiplexed over a shared relay-trunk
	// connection speaking hbproto batches.
	PathTrunked
)

// String implements fmt.Stringer.
func (p Path) String() string {
	switch p {
	case PathDirect:
		return "direct"
	case PathRelayed:
		return "relayed"
	case PathTrunked:
		return "trunked"
	default:
		return fmt.Sprintf("path(%d)", uint8(p))
	}
}

// EventKind tags one timeline record.
type EventKind uint8

// Event kinds.
const (
	// EvSend is a heartbeat leaving a client.
	EvSend EventKind = iota + 1
	// EvAck is the matching acknowledgement (server ack or relay
	// feedback) arriving back at the client.
	EvAck
	// EvTimeout is a heartbeat written off unacknowledged.
	EvTimeout
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvSend:
		return "send"
	case EvAck:
		return "ack"
	case EvTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Client is one row of the trace's client table. Period/Expiry/Pad are the
// values that actually went on the wire (after any speedup compression), so
// a replay reproduces the recorded workload, not the nominal app profile.
type Client struct {
	ID     string
	App    string
	Period time.Duration
	Expiry time.Duration
	Pad    int
	Path   Path
	// Relay is the relay/trunk group index for relayed and trunked
	// clients, -1 for direct ones.
	Relay int
}

// FaultWindow marks one injected fault's activity span on the trace
// timeline (relative to the recording start). To == 0 means the window
// stayed open to the end of the run.
type FaultWindow struct {
	Kind     string
	From, To time.Duration
}

// Event is one timeline record. Events are ordered by (At, Client, Seq,
// Kind); the codec delta-encodes At.
type Event struct {
	At     time.Duration
	Kind   EventKind
	Client int
	Seq    uint64
}

// Timeline is one decoded trace: everything needed to replay the recorded
// arrival schedule deterministically.
type Timeline struct {
	// Seed is the recorded run's randomness seed (fault schedule seed for
	// chaos runs); the sim replay seeds its scheduler with it.
	Seed int64
	// BaseUnixNano pins the recording start on the wall clock, for
	// provenance only — event times are offsets from it.
	BaseUnixNano int64
	// RelayPeriod and RelayCapacity parameterize the relay groups the
	// recorded run forwarded through (Algorithm 1's T and M); replays
	// rebuild their schedulers from these.
	RelayPeriod   time.Duration
	RelayCapacity int

	Clients []Client
	Faults  []FaultWindow
	Events  []Event
}

// Validate checks cross-references the codec cannot express as types.
func (tl *Timeline) Validate() error {
	if tl.RelayPeriod < 0 || tl.RelayCapacity < 0 {
		return fmt.Errorf("rec: negative relay parameters %v/%d", tl.RelayPeriod, tl.RelayCapacity)
	}
	for i, c := range tl.Clients {
		if c.ID == "" {
			return fmt.Errorf("rec: client %d has empty ID", i)
		}
		if c.Period < 0 || c.Expiry < 0 || c.Pad < 0 {
			return fmt.Errorf("rec: client %s has negative period/expiry/pad", c.ID)
		}
		if c.Relay < -1 {
			return fmt.Errorf("rec: client %s has relay index %d", c.ID, c.Relay)
		}
		if c.Path == PathDirect && c.Relay != -1 {
			return fmt.Errorf("rec: direct client %s bound to relay %d", c.ID, c.Relay)
		}
	}
	var prevFrom time.Duration
	for i, w := range tl.Faults {
		if w.From < prevFrom {
			return fmt.Errorf("rec: fault window %d out of order (%v after %v)", i, w.From, prevFrom)
		}
		if w.To != 0 && w.To < w.From {
			return fmt.Errorf("rec: fault window %d ends before it starts", i)
		}
		prevFrom = w.From
	}
	var prev time.Duration
	for i, e := range tl.Events {
		if e.Client < 0 || e.Client >= len(tl.Clients) {
			return fmt.Errorf("rec: event %d references client %d of %d", i, e.Client, len(tl.Clients))
		}
		if e.Kind != EvSend && e.Kind != EvAck && e.Kind != EvTimeout {
			return fmt.Errorf("rec: event %d has unknown kind %d", i, e.Kind)
		}
		if e.At < prev {
			return fmt.Errorf("rec: event %d goes back in time (%v after %v)", i, e.At, prev)
		}
		prev = e.At
	}
	return nil
}

// Sends counts EvSend events.
func (tl *Timeline) Sends() int {
	n := 0
	for _, e := range tl.Events {
		if e.Kind == EvSend {
			n++
		}
	}
	return n
}

// Horizon returns the last event instant.
func (tl *Timeline) Horizon() time.Duration {
	if len(tl.Events) == 0 {
		return 0
	}
	return tl.Events[len(tl.Events)-1].At
}

// Digest returns a stable hex identity of the encoded timeline: equal
// digests mean bit-identical traces.
func (tl *Timeline) Digest() string {
	h := fnv.New64a()
	_, _ = h.Write(tl.Append(nil))
	return fmt.Sprintf("%016x", h.Sum64())
}

// RecordedMetrics summarizes the outcome captured in the trace itself —
// the reference column of a parity report. Ack latency pairs each EvAck
// with the latest preceding EvSend of the same (client, seq).
func (tl *Timeline) RecordedMetrics() Metrics {
	type key struct {
		client int
		seq    uint64
	}
	sent := make(map[key]time.Duration, len(tl.Events)/2)
	m := Metrics{Source: "recorded"}
	var lat sample
	for _, e := range tl.Events {
		k := key{e.Client, e.Seq}
		switch e.Kind {
		case EvSend:
			m.Sent++
			sent[k] = e.At
		case EvAck:
			// Orphan acks (send predates the recording) carry no latency
			// and are not counted as deliveries of recorded sends.
			if at, ok := sent[k]; ok {
				m.Delivered++
				lat.add(float64(e.At-at) / float64(time.Millisecond))
				delete(sent, k)
			}
		case EvTimeout:
			m.Timeouts++
			delete(sent, k)
		}
	}
	m.AckLatency = lat.quantiles()
	m.finish()
	return m
}
