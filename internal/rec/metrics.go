package rec

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"slices"

	"d2dhb/internal/metrics"
)

// Quantiles summarizes one latency distribution in milliseconds, computed
// exactly from the sorted sample (no histogram bucketing) so a
// deterministic replay produces bit-identical numbers.
type Quantiles struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MaxMs  float64 `json:"maxMs"`
}

// Signaling counts uplink work on the network side of a run.
type Signaling struct {
	// Uplinks is the number of uplink transactions that carried
	// heartbeats: direct sends plus relay batch flushes. This is the
	// quantity the paper's aggregation reduces.
	Uplinks uint64 `json:"uplinks"`
	// Batches is the relay-flush share of Uplinks.
	Batches uint64 `json:"batches"`
	// L3Messages is the modeled layer-3 signaling total (RRC setup/
	// release); only the simulator can count it, so it is zero for live
	// and recorded sources.
	L3Messages uint64 `json:"l3Messages,omitempty"`
}

// Metrics is one replay's (or the recorded run's) outcome summary — the
// unit of sim-vs-real parity comparison.
type Metrics struct {
	Source        string    `json:"source"` // recorded | sim | live
	Sent          uint64    `json:"sent"`
	Delivered     uint64    `json:"delivered"`
	Timeouts      uint64    `json:"timeouts"`
	Expired       uint64    `json:"expired,omitempty"`
	DeliveryRatio float64   `json:"deliveryRatio"`
	AckLatency    Quantiles `json:"ackLatency"`
	Signaling     Signaling `json:"signaling"`
}

// finish derives DeliveryRatio.
func (m *Metrics) finish() {
	if m.Sent > 0 {
		m.DeliveryRatio = float64(m.Delivered) / float64(m.Sent)
	}
}

// Finish derives aggregate fields after the counters are final.
func (m *Metrics) Finish() { m.finish() }

// Digest returns a stable hex fingerprint of the metrics. Two replays of
// the same trace through the deterministic simulator must produce equal
// digests; a changed digest is a behavioral regression.
func (m Metrics) Digest() string {
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "%s|%d|%d|%d|%d|%.9f|%d|%.6f|%.6f|%.6f|%.6f|%.6f|%d|%d|%d",
		m.Source, m.Sent, m.Delivered, m.Timeouts, m.Expired, m.DeliveryRatio,
		m.AckLatency.Count, m.AckLatency.MeanMs, m.AckLatency.P50Ms,
		m.AckLatency.P95Ms, m.AckLatency.P99Ms, m.AckLatency.MaxMs,
		m.Signaling.Uplinks, m.Signaling.Batches, m.Signaling.L3Messages)
	return fmt.Sprintf("%016x", h.Sum64())
}

// sample accumulates latency observations (milliseconds) for exact
// quantiles.
type sample struct {
	vals []float64
	sum  float64
}

func (s *sample) add(ms float64) {
	s.vals = append(s.vals, ms)
	s.sum += ms
}

// quantiles sorts and summarizes the sample.
func (s *sample) quantiles() Quantiles {
	q := Quantiles{Count: uint64(len(s.vals))}
	if len(s.vals) == 0 {
		return q
	}
	slices.Sort(s.vals)
	at := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(s.vals)))) - 1
		if i < 0 {
			i = 0
		}
		return s.vals[i]
	}
	q.MeanMs = s.sum / float64(len(s.vals))
	q.P50Ms = at(0.50)
	q.P95Ms = at(0.95)
	q.P99Ms = at(0.99)
	q.MaxMs = s.vals[len(s.vals)-1]
	return q
}

// NewSample returns an empty latency accumulator for replay drivers.
func NewSample() *Sample { return &Sample{} }

// Sample is the exported latency accumulator: replayers feed millisecond
// observations in and take exact Quantiles out.
type Sample struct{ s sample }

// Add records one latency observation in milliseconds.
func (s *Sample) Add(ms float64) { s.s.add(ms) }

// Quantiles summarizes the sample (sorts in place).
func (s *Sample) Quantiles() Quantiles { return s.s.quantiles() }

// ParityReport lines the recorded outcome up against the sim and live
// replays of the same trace file.
type ParityReport struct {
	// TraceDigest identifies the workload all three columns consumed.
	TraceDigest string `json:"traceDigest"`
	// SimDigest is the deterministic replay fingerprint: the regression
	// key a golden test pins.
	SimDigest string  `json:"simDigest"`
	Recorded  Metrics `json:"recorded"`
	Sim       Metrics `json:"sim"`
	Live      Metrics `json:"live"`
}

// NewParityReport assembles the report and fills the digests.
func NewParityReport(tl *Timeline, recorded, sim, live Metrics) ParityReport {
	return ParityReport{
		TraceDigest: tl.Digest(),
		SimDigest:   sim.Digest(),
		Recorded:    recorded,
		Sim:         sim,
		Live:        live,
	}
}

// DeliveryGap returns |sim − live| delivery ratio, the headline parity
// number.
func (p ParityReport) DeliveryGap() float64 {
	return math.Abs(p.Sim.DeliveryRatio - p.Live.DeliveryRatio)
}

// Table renders the three-column parity comparison.
func (p ParityReport) Table() *metrics.Table {
	t := metrics.NewTable(fmt.Sprintf("sim-vs-real parity (trace %s)", p.TraceDigest),
		"metric", "recorded", "sim", "live", "sim−live")
	u := func(v uint64) string { return fmt.Sprintf("%d", v) }
	f := func(v float64) string { return metrics.F(v) }
	rowU := func(name string, rec, sim, live uint64) {
		t.AddRow(name, u(rec), u(sim), u(live), fmt.Sprintf("%+d", int64(sim)-int64(live)))
	}
	rowF := func(name string, rec, sim, live float64) {
		t.AddRow(name, f(rec), f(sim), f(live), fmt.Sprintf("%+.3f", sim-live))
	}
	rowU("sent", p.Recorded.Sent, p.Sim.Sent, p.Live.Sent)
	rowU("delivered", p.Recorded.Delivered, p.Sim.Delivered, p.Live.Delivered)
	rowU("timeouts", p.Recorded.Timeouts, p.Sim.Timeouts, p.Live.Timeouts)
	rowF("delivery ratio", p.Recorded.DeliveryRatio, p.Sim.DeliveryRatio, p.Live.DeliveryRatio)
	rowF("ack p50 (ms)", p.Recorded.AckLatency.P50Ms, p.Sim.AckLatency.P50Ms, p.Live.AckLatency.P50Ms)
	rowF("ack p95 (ms)", p.Recorded.AckLatency.P95Ms, p.Sim.AckLatency.P95Ms, p.Live.AckLatency.P95Ms)
	rowF("ack p99 (ms)", p.Recorded.AckLatency.P99Ms, p.Sim.AckLatency.P99Ms, p.Live.AckLatency.P99Ms)
	rowU("uplink transactions", p.Recorded.Signaling.Uplinks, p.Sim.Signaling.Uplinks, p.Live.Signaling.Uplinks)
	rowU("relay batches", p.Recorded.Signaling.Batches, p.Sim.Signaling.Batches, p.Live.Signaling.Batches)
	t.AddRow("L3 messages (model)", "-", u(p.Sim.Signaling.L3Messages), "-", "")
	return t
}

// JSON renders the report as indented JSON.
func (p ParityReport) JSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}
