package rec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// randomTimeline builds a valid, canonical timeline from a seeded source so
// the property tests are reproducible.
func randomTimeline(rng *rand.Rand) *Timeline {
	tl := &Timeline{
		Seed:          rng.Int63() - rng.Int63(),
		BaseUnixNano:  rng.Int63(),
		RelayPeriod:   time.Duration(rng.Intn(60)) * time.Second,
		RelayCapacity: rng.Intn(64),
	}
	nclients := 1 + rng.Intn(40)
	for i := 0; i < nclients; i++ {
		c := Client{
			ID:     fmt.Sprintf("ue-%04d", i),
			App:    []string{"chat", "push", "iot", ""}[rng.Intn(4)],
			Period: time.Duration(1+rng.Intn(300)) * time.Second,
			Expiry: time.Duration(rng.Intn(600)) * time.Second,
			Pad:    rng.Intn(512),
			Path:   Path(rng.Intn(3)),
			Relay:  -1,
		}
		if c.Path != PathDirect {
			c.Relay = rng.Intn(8)
		}
		tl.Clients = append(tl.Clients, c)
	}
	var from time.Duration
	for i, n := 0, rng.Intn(5); i < n; i++ {
		from += time.Duration(rng.Intn(5000)) * time.Millisecond
		w := FaultWindow{Kind: []string{"latency", "blackhole", "reset"}[rng.Intn(3)], From: from}
		if rng.Intn(2) == 0 {
			w.To = from + time.Duration(rng.Intn(3000))*time.Millisecond
		}
		tl.Faults = append(tl.Faults, w)
	}
	var at time.Duration
	for i, n := 0, rng.Intn(500); i < n; i++ {
		at += time.Duration(rng.Intn(20_000_000)) // ≤20ms deltas
		tl.Events = append(tl.Events, Event{
			At:     at,
			Kind:   EventKind(1 + rng.Intn(3)),
			Client: rng.Intn(nclients),
			Seq:    uint64(rng.Intn(1000)),
		})
	}
	return tl
}

func TestRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tl := randomTimeline(rng)
		data := tl.Append(nil)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !reflect.DeepEqual(tl, got) {
			t.Fatalf("seed %d: round trip not identity:\nin:  %+v\nout: %+v", seed, tl, got)
		}
		// Re-encode must be bit-identical (stable digest).
		if !bytes.Equal(data, got.Append(nil)) {
			t.Fatalf("seed %d: re-encode differs", seed)
		}
		if tl.Digest() != got.Digest() {
			t.Fatalf("seed %d: digest changed across round trip", seed)
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	tl := &Timeline{}
	got, err := Decode(tl.Append(nil))
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if got.Sends() != 0 || got.Horizon() != 0 {
		t.Fatalf("empty timeline has sends=%d horizon=%v", got.Sends(), got.Horizon())
	}
}

func TestRoundTripZeroLengthFaultWindow(t *testing.T) {
	tl := &Timeline{
		Clients: []Client{{ID: "a", Relay: -1}},
		Faults: []FaultWindow{
			{Kind: "reset", From: time.Second, To: time.Second}, // zero-length, closed
			{Kind: "blackhole", From: 2 * time.Second},          // open-ended
		},
	}
	got, err := Decode(tl.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Faults[0].To != time.Second {
		t.Fatalf("zero-length window decoded as To=%v", got.Faults[0].To)
	}
	if got.Faults[1].To != 0 {
		t.Fatalf("open window decoded as To=%v", got.Faults[1].To)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	tl := randomTimeline(rand.New(rand.NewSource(7)))
	data := tl.Append(nil)

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"preamble only", func(b []byte) []byte { return b[:5] }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"future version", func(b []byte) []byte { b[4] = Version + 1; return b }, ErrBadVersion},
		{"flipped payload bit", func(b []byte) []byte { b[20] ^= 0x40; return b }, ErrBadChecksum},
		{"flipped trailer bit", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, ErrBadChecksum},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-10] }, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(bytes.Clone(data))
			_, err := Decode(mutated)
			if err == nil {
				t.Fatal("corrupted trace decoded without error")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestDecodeLengthFieldAbuse hand-crafts payloads whose length fields claim
// absurd sizes; decode must reject them without attempting the allocation.
func TestDecodeLengthFieldAbuse(t *testing.T) {
	// Valid preamble + header, then a forged length field. The CRC is
	// recomputed so only the semantic bound can reject the input.
	forge := func(build func(buf []byte) []byte) []byte {
		pre := append([]byte{}, recMagic[:]...)
		pre = append(pre, Version)
		return appendCRC(pre, build(nil))
	}
	huge := ^uint64(0) >> 1

	t.Run("client count", func(t *testing.T) {
		data := forge(func(buf []byte) []byte {
			buf = appendHeader(buf, 0, 0, 0, 0)
			return appendUvarint(buf, huge)
		})
		if _, err := Decode(data); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("got %v, want ErrTooLarge", err)
		}
	})
	t.Run("string length", func(t *testing.T) {
		data := forge(func(buf []byte) []byte {
			buf = appendHeader(buf, 0, 0, 0, 0)
			buf = appendUvarint(buf, 1)    // one client
			return appendUvarint(buf, 1e6) // ID length 1M > maxString
		})
		if _, err := Decode(data); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("got %v, want ErrTooLarge", err)
		}
	})
	t.Run("string past end", func(t *testing.T) {
		data := forge(func(buf []byte) []byte {
			buf = appendHeader(buf, 0, 0, 0, 0)
			buf = appendUvarint(buf, 1)
			return appendUvarint(buf, 64) // claims 64 bytes, payload ends
		})
		if _, err := Decode(data); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("event count", func(t *testing.T) {
		data := forge(func(buf []byte) []byte {
			buf = appendHeader(buf, 0, 0, 0, 0)
			buf = appendUvarint(buf, 0) // clients
			buf = appendUvarint(buf, 0) // faults
			return appendUvarint(buf, huge)
		})
		if _, err := Decode(data); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("got %v, want ErrTooLarge", err)
		}
	})
}

func TestDecodeRejectsSemanticGarbage(t *testing.T) {
	base := &Timeline{Clients: []Client{{ID: "a", Relay: -1}}}

	t.Run("trailing bytes", func(t *testing.T) {
		// Splice extra payload bytes in and fix the CRC.
		data := base.Append(nil)
		payload := append(bytes.Clone(data[5:len(data)-4]), 0xEE)
		if _, err := Decode(appendCRC(data[:5], payload)); err == nil {
			t.Fatal("trailing payload bytes accepted")
		}
	})
	t.Run("bad event client ref", func(t *testing.T) {
		tl := &Timeline{
			Clients: []Client{{ID: "a", Relay: -1}},
			Events:  []Event{{Kind: EvSend, Client: 5}},
		}
		if _, err := Decode(tl.Append(nil)); err == nil {
			t.Fatal("event referencing missing client accepted")
		}
	})
	t.Run("bad event kind", func(t *testing.T) {
		tl := &Timeline{
			Clients: []Client{{ID: "a", Relay: -1}},
			Events:  []Event{{Kind: 9, Client: 0}},
		}
		if _, err := Decode(tl.Append(nil)); err == nil {
			t.Fatal("unknown event kind accepted")
		}
	})
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		tl   Timeline
	}{
		{"negative relay period", Timeline{RelayPeriod: -1}},
		{"empty client id", Timeline{Clients: []Client{{Relay: -1}}}},
		{"negative period", Timeline{Clients: []Client{{ID: "a", Period: -1, Relay: -1}}}},
		{"relay below -1", Timeline{Clients: []Client{{ID: "a", Relay: -2}}}},
		{"direct with relay", Timeline{Clients: []Client{{ID: "a", Path: PathDirect, Relay: 2}}}},
		{"faults out of order", Timeline{Faults: []FaultWindow{{Kind: "a", From: time.Second}, {Kind: "b", From: 0}}}},
		{"fault ends before start", Timeline{Faults: []FaultWindow{{Kind: "a", From: 2 * time.Second, To: time.Second}}}},
		{"events out of order", Timeline{
			Clients: []Client{{ID: "a", Relay: -1}},
			Events:  []Event{{At: time.Second, Kind: EvSend}, {At: 0, Kind: EvSend}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.tl.Validate(); err == nil {
				t.Fatal("invalid timeline validated")
			}
			if err := tc.tl.Encode(&bytes.Buffer{}); err == nil {
				t.Fatal("invalid timeline encoded")
			}
		})
	}
}

func TestFileRoundTrip(t *testing.T) {
	tl := randomTimeline(rand.New(rand.NewSource(42)))
	path := filepath.Join(t.TempDir(), "run.d2dr")
	if err := tl.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != tl.Digest() {
		t.Fatal("file round trip changed digest")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.d2dr")); err == nil {
		t.Fatal("reading missing file succeeded")
	}
	bad := &Timeline{RelayPeriod: -1}
	if err := bad.WriteFile(filepath.Join(t.TempDir(), "bad.d2dr")); err == nil {
		t.Fatal("invalid timeline written to file")
	}
}

func TestEncodeWriterError(t *testing.T) {
	tl := &Timeline{}
	if err := tl.Encode(failingWriter{}); err == nil {
		t.Fatal("writer error swallowed")
	}
	var buf bytes.Buffer
	if err := tl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("sink closed") }

// Forged-payload helpers: raw encode primitives mirroring the codec so the
// abuse tests can hand-craft hostile inputs with valid checksums.

func appendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

func appendHeader(buf []byte, seed, base int64, period, capacity uint64) []byte {
	buf = binary.AppendVarint(buf, seed)
	buf = binary.AppendVarint(buf, base)
	buf = binary.AppendUvarint(buf, period)
	return binary.AppendUvarint(buf, capacity)
}

func appendCRC(preamble, payload []byte) []byte {
	out := append(bytes.Clone(preamble), payload...)
	return binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
}

func TestStringers(t *testing.T) {
	for want, v := range map[string]fmt.Stringer{
		"direct": PathDirect, "relayed": PathRelayed, "trunked": PathTrunked,
		"path(9)": Path(9),
		"send":    EvSend, "ack": EvAck, "timeout": EvTimeout,
		"kind(9)": EventKind(9),
	} {
		if got := v.String(); got != want {
			t.Errorf("%T(%v).String() = %q, want %q", v, v, got, want)
		}
	}
}
