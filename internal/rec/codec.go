package rec

// The wire codec: a 5-byte preamble (magic + version), a varint payload —
// header fields, client table, fault windows, delta-encoded events — and a
// big-endian CRC32 trailer over the payload. Delta encoding matters: event
// timestamps are monotone, so consecutive heartbeats a few milliseconds
// apart cost two or three bytes instead of eight, and a million-event
// timeline stays in the tens of megabytes uncompressed.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// Codec constants.
const (
	// Version is the current trace format revision.
	Version = 1
	// maxString bounds every length-prefixed string in the file.
	maxString = 4096
	// maxClients bounds the client table.
	maxClients = 1 << 22
	// maxEvents bounds the event stream.
	maxEvents = 1 << 28
	// maxFaults bounds the fault-window table.
	maxFaults = 1 << 16
)

var recMagic = [4]byte{'D', '2', 'D', 'R'}

// Codec errors.
var (
	ErrBadMagic    = errors.New("rec: bad magic")
	ErrBadVersion  = errors.New("rec: unsupported version")
	ErrBadChecksum = errors.New("rec: checksum mismatch")
	ErrTruncated   = errors.New("rec: truncated trace")
	ErrTooLarge    = errors.New("rec: length field exceeds limit")
)

// Append encodes the timeline onto buf and returns the extended slice:
// preamble, payload, CRC32 trailer.
func (tl *Timeline) Append(buf []byte) []byte {
	buf = append(buf, recMagic[:]...)
	buf = append(buf, Version)
	start := len(buf)
	buf = binary.AppendVarint(buf, tl.Seed)
	buf = binary.AppendVarint(buf, tl.BaseUnixNano)
	buf = binary.AppendUvarint(buf, uint64(tl.RelayPeriod))
	buf = binary.AppendUvarint(buf, uint64(tl.RelayCapacity))

	buf = binary.AppendUvarint(buf, uint64(len(tl.Clients)))
	for _, c := range tl.Clients {
		buf = appendString(buf, c.ID)
		buf = appendString(buf, c.App)
		buf = binary.AppendUvarint(buf, uint64(c.Period))
		buf = binary.AppendUvarint(buf, uint64(c.Expiry))
		buf = binary.AppendUvarint(buf, uint64(c.Pad))
		buf = append(buf, byte(c.Path))
		buf = binary.AppendUvarint(buf, uint64(c.Relay+1))
	}

	buf = binary.AppendUvarint(buf, uint64(len(tl.Faults)))
	var prevFrom time.Duration
	for _, w := range tl.Faults {
		buf = appendString(buf, w.Kind)
		buf = binary.AppendUvarint(buf, uint64(w.From-prevFrom))
		prevFrom = w.From
		// 0 = open-ended; otherwise duration+1 so zero-length windows
		// survive the round trip.
		if w.To == 0 {
			buf = binary.AppendUvarint(buf, 0)
		} else {
			buf = binary.AppendUvarint(buf, uint64(w.To-w.From)+1)
		}
	}

	buf = binary.AppendUvarint(buf, uint64(len(tl.Events)))
	var prevAt time.Duration
	for _, e := range tl.Events {
		buf = append(buf, byte(e.Kind))
		buf = binary.AppendUvarint(buf, uint64(e.At-prevAt))
		prevAt = e.At
		buf = binary.AppendUvarint(buf, uint64(e.Client))
		buf = binary.AppendUvarint(buf, e.Seq)
	}

	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// Encode writes the trace to w.
func (tl *Timeline) Encode(w io.Writer) error {
	if err := tl.Validate(); err != nil {
		return err
	}
	_, err := w.Write(tl.Append(nil))
	return err
}

// WriteFile encodes the trace into path.
func (tl *Timeline) WriteFile(path string) error {
	if err := tl.Validate(); err != nil {
		return err
	}
	return os.WriteFile(path, tl.Append(nil), 0o644)
}

// Decode parses one trace from data.
func Decode(data []byte) (*Timeline, error) {
	if len(data) < len(recMagic)+1+4 {
		return nil, ErrTruncated
	}
	if [4]byte(data[:4]) != recMagic {
		return nil, ErrBadMagic
	}
	if data[4] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, data[4])
	}
	payload, trailer := data[5:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(trailer) {
		return nil, ErrBadChecksum
	}
	d := &decoder{data: payload}
	tl := &Timeline{
		Seed:          d.varint(),
		BaseUnixNano:  d.varint(),
		RelayPeriod:   time.Duration(d.uvarint()),
		RelayCapacity: int(d.bounded(maxClients, "relay capacity")),
	}

	nclients := d.bounded(maxClients, "client count")
	if d.err == nil {
		tl.Clients = make([]Client, 0, min(nclients, 4096))
	}
	for i := uint64(0); i < nclients && d.err == nil; i++ {
		c := Client{
			ID:     d.str(),
			App:    d.str(),
			Period: time.Duration(d.uvarint()),
			Expiry: time.Duration(d.uvarint()),
			Pad:    int(d.bounded(1<<30, "pad")),
			Path:   Path(d.byte()),
			Relay:  int(d.bounded(maxClients, "relay index")) - 1,
		}
		tl.Clients = append(tl.Clients, c)
	}

	nfaults := d.bounded(maxFaults, "fault count")
	var prevFrom time.Duration
	for i := uint64(0); i < nfaults && d.err == nil; i++ {
		w := FaultWindow{Kind: d.str()}
		w.From = prevFrom + time.Duration(d.uvarint())
		prevFrom = w.From
		if dur := d.uvarint(); dur > 0 {
			w.To = w.From + time.Duration(dur-1)
		}
		tl.Faults = append(tl.Faults, w)
	}

	nevents := d.bounded(maxEvents, "event count")
	if d.err == nil {
		tl.Events = make([]Event, 0, min(nevents, 1<<16))
	}
	var prevAt time.Duration
	for i := uint64(0); i < nevents && d.err == nil; i++ {
		e := Event{Kind: EventKind(d.byte())}
		e.At = prevAt + time.Duration(d.uvarint())
		prevAt = e.At
		e.Client = int(d.bounded(maxClients, "event client"))
		e.Seq = d.uvarint()
		tl.Events = append(tl.Events, e)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("rec: %d trailing payload bytes", len(d.data)-d.pos)
	}
	if err := tl.Validate(); err != nil {
		return nil, err
	}
	return tl, nil
}

// ReadFile loads and decodes the trace at path.
func ReadFile(path string) (*Timeline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decoder consumes the payload with sticky-error semantics so the decode
// loops stay flat.
type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.err = ErrTruncated
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.err = ErrTruncated
		return 0
	}
	d.pos += n
	return v
}

// bounded reads a uvarint and rejects values above limit — the guard
// against length-field abuse (a forged count must not drive a huge
// allocation).
func (d *decoder) bounded(limit uint64, what string) uint64 {
	v := d.uvarint()
	if d.err == nil && v > limit {
		d.err = fmt.Errorf("%w: %s %d > %d", ErrTooLarge, what, v, limit)
		return 0
	}
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.err = ErrTruncated
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *decoder) str() string {
	n := d.bounded(maxString, "string length")
	if d.err != nil {
		return ""
	}
	if d.pos+int(n) > len(d.data) {
		d.err = ErrTruncated
		return ""
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}
