package rec

import (
	"fmt"
	"slices"
	"sync"
	"time"
)

// Recorder collects one run's timeline from concurrently-running clients.
// All methods are safe on a nil receiver (no-ops), so call sites hook it
// unconditionally, telemetry-style. Events are buffered in memory and
// sorted once at snapshot time: senders on many goroutines observe wall
// instants slightly out of order, and the canonical trace order is by
// instant, not by lock-acquisition order.
type Recorder struct {
	mu      sync.Mutex
	start   time.Time
	seed    int64
	period  time.Duration
	cap     int
	clients []Client
	faults  []FaultWindow
	events  []Event
}

// NewRecorder returns an empty recorder. Call Start before recording
// events.
func NewRecorder() *Recorder { return &Recorder{} }

// Start pins t=0 of the timeline to now and stores the run seed. A second
// call is ignored, so the recorder can be armed defensively.
func (r *Recorder) Start(now time.Time, seed int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.start.IsZero() {
		r.start = now
		r.seed = seed
	}
}

// SetRelay records the relay groups' Algorithm 1 parameters (period T,
// capacity M) so replays can rebuild their schedulers.
func (r *Recorder) SetRelay(period time.Duration, capacity int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.period, r.cap = period, capacity
	r.mu.Unlock()
}

// AddClient appends one client-table row and returns its index, or -1 on a
// nil recorder.
func (r *Recorder) AddClient(c Client) int {
	if r == nil {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clients = append(r.clients, c)
	return len(r.clients) - 1
}

// AddFault appends one fault-window marker (times relative to Start).
func (r *Recorder) AddFault(w FaultWindow) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.faults = append(r.faults, w)
	r.mu.Unlock()
}

// Record appends one event for the given client index at wall instant at.
// Events before Start or with a negative client index are dropped.
func (r *Recorder) Record(kind EventKind, client int, seq uint64, at time.Time) {
	if r == nil || client < 0 {
		return
	}
	r.mu.Lock()
	if !r.start.IsZero() && !at.Before(r.start) {
		r.events = append(r.events, Event{At: at.Sub(r.start), Kind: kind, Client: client, Seq: seq})
	}
	r.mu.Unlock()
}

// Timeline snapshots the recording into a canonical (sorted, validated)
// trace. The recorder stays usable afterwards.
func (r *Recorder) Timeline() (*Timeline, error) {
	if r == nil {
		return nil, fmt.Errorf("rec: nil recorder")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.start.IsZero() {
		return nil, fmt.Errorf("rec: recorder never started")
	}
	tl := &Timeline{
		Seed:          r.seed,
		BaseUnixNano:  r.start.UnixNano(),
		RelayPeriod:   r.period,
		RelayCapacity: r.cap,
		Clients:       slices.Clone(r.clients),
		Faults:        slices.Clone(r.faults),
		Events:        slices.Clone(r.events),
	}
	slices.SortFunc(tl.Events, func(a, b Event) int {
		switch {
		case a.At != b.At:
			if a.At < b.At {
				return -1
			}
			return 1
		case a.Client != b.Client:
			return a.Client - b.Client
		case a.Seq != b.Seq:
			if a.Seq < b.Seq {
				return -1
			}
			return 1
		default:
			return int(a.Kind) - int(b.Kind)
		}
	})
	slices.SortFunc(tl.Faults, func(a, b FaultWindow) int {
		switch {
		case a.From != b.From:
			if a.From < b.From {
				return -1
			}
			return 1
		default:
			if a.Kind < b.Kind {
				return -1
			} else if a.Kind > b.Kind {
				return 1
			}
			return 0
		}
	})
	if err := tl.Validate(); err != nil {
		return nil, err
	}
	return tl, nil
}

// Events reports how many events have been recorded so far.
func (r *Recorder) Events() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}
