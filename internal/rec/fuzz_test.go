package rec

import (
	"math/rand"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the trace decoder. Any input must
// either fail cleanly or decode to a timeline that re-encodes to the exact
// same bytes (decode∘encode identity on the accepted set) — no panics, no
// runaway allocations from forged length fields.
func FuzzDecode(f *testing.F) {
	for seed := int64(0); seed < 4; seed++ {
		f.Add(randomTimeline(rand.New(rand.NewSource(seed))).Append(nil))
	}
	f.Add([]byte{})
	f.Add([]byte("D2DR"))
	f.Add([]byte{'D', '2', 'D', 'R', Version, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		tl, err := Decode(data)
		if err != nil {
			return
		}
		re := tl.Append(nil)
		if string(re) != string(data) {
			t.Fatalf("accepted input is not canonical:\nin:  %x\nout: %x", data, re)
		}
		// Exercising the summary paths must not panic on any valid trace.
		_ = tl.RecordedMetrics()
		_ = tl.Digest()
	})
}
