package rec

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Unix(1_700_000_000, 0)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Start(t0, 1)
	r.SetRelay(time.Minute, 5)
	if idx := r.AddClient(Client{ID: "x"}); idx != -1 {
		t.Fatalf("nil AddClient returned %d", idx)
	}
	r.AddFault(FaultWindow{Kind: "latency"})
	r.Record(EvSend, 0, 1, t0)
	if r.Events() != 0 {
		t.Fatal("nil recorder counted events")
	}
	if _, err := r.Timeline(); err == nil {
		t.Fatal("nil recorder produced a timeline")
	}
}

func TestRecorderLifecycle(t *testing.T) {
	r := NewRecorder()
	if _, err := r.Timeline(); err == nil {
		t.Fatal("unstarted recorder produced a timeline")
	}
	// Events before Start are dropped.
	r.Record(EvSend, 0, 1, t0)

	r.Start(t0, 99)
	r.Start(t0.Add(time.Hour), 1) // second Start ignored
	r.SetRelay(30*time.Second, 5)
	a := r.AddClient(Client{ID: "ue-a", App: "chat", Period: time.Minute, Relay: -1})
	b := r.AddClient(Client{ID: "ue-b", App: "push", Period: time.Minute, Path: PathRelayed, Relay: 0})
	if a != 0 || b != 1 {
		t.Fatalf("client indices %d,%d", a, b)
	}
	r.AddFault(FaultWindow{Kind: "latency", From: 2 * time.Second, To: 4 * time.Second})

	// Recorded deliberately out of order; before-start and negative-index
	// events must be dropped.
	r.Record(EvAck, b, 1, t0.Add(3*time.Second))
	r.Record(EvSend, b, 1, t0.Add(1*time.Second))
	r.Record(EvSend, a, 1, t0.Add(1*time.Second))
	r.Record(EvTimeout, a, 1, t0.Add(5*time.Second))
	r.Record(EvSend, -1, 1, t0.Add(1*time.Second))
	r.Record(EvSend, a, 0, t0.Add(-time.Second))
	if got := r.Events(); got != 4 {
		t.Fatalf("Events() = %d, want 4", got)
	}

	tl, err := r.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	if tl.Seed != 99 || tl.BaseUnixNano != t0.UnixNano() {
		t.Fatalf("header %d/%d", tl.Seed, tl.BaseUnixNano)
	}
	if tl.RelayPeriod != 30*time.Second || tl.RelayCapacity != 5 {
		t.Fatalf("relay params %v/%d", tl.RelayPeriod, tl.RelayCapacity)
	}
	// Canonical order: (At, Client, Seq, Kind).
	want := []Event{
		{At: time.Second, Kind: EvSend, Client: 0, Seq: 1},
		{At: time.Second, Kind: EvSend, Client: 1, Seq: 1},
		{At: 3 * time.Second, Kind: EvAck, Client: 1, Seq: 1},
		{At: 5 * time.Second, Kind: EvTimeout, Client: 0, Seq: 1},
	}
	if len(tl.Events) != len(want) {
		t.Fatalf("got %d events, want %d", len(tl.Events), len(want))
	}
	for i := range want {
		if tl.Events[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, tl.Events[i], want[i])
		}
	}
	if tl.Horizon() != 5*time.Second || tl.Sends() != 2 {
		t.Fatalf("horizon %v sends %d", tl.Horizon(), tl.Sends())
	}

	// Snapshot is a clone: mutating it must not corrupt the recorder.
	tl.Events[0].Seq = 999
	tl2, err := r.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	if tl2.Events[0].Seq != 1 {
		t.Fatal("snapshot aliased recorder state")
	}
}

func TestRecorderSortsFaults(t *testing.T) {
	r := NewRecorder()
	r.Start(t0, 0)
	r.AddClient(Client{ID: "a", Relay: -1})
	r.AddFault(FaultWindow{Kind: "reset", From: 9 * time.Second})
	r.AddFault(FaultWindow{Kind: "latency", From: time.Second, To: 2 * time.Second})
	r.AddFault(FaultWindow{Kind: "blackhole", From: time.Second, To: 3 * time.Second})
	tl, err := r.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	if tl.Faults[0].Kind != "blackhole" || tl.Faults[1].Kind != "latency" || tl.Faults[2].Kind != "reset" {
		t.Fatalf("fault order %v", tl.Faults)
	}
}

// TestRecorderConcurrent hammers the recorder from many goroutines and
// checks the snapshot is canonical and complete. Run with -race.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	r.Start(t0, 0)
	const workers, per = 8, 200
	ids := make([]int, workers)
	for w := range ids {
		ids[w] = r.AddClient(Client{ID: strings.Repeat("w", w+1), Relay: -1})
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				at := t0.Add(time.Duration(i*workers+w) * time.Millisecond)
				r.Record(EvSend, ids[w], uint64(i), at)
			}
		}(w)
	}
	wg.Wait()
	tl, err := r.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Events) != workers*per {
		t.Fatalf("lost events: %d of %d", len(tl.Events), workers*per)
	}
	if _, err := Decode(tl.Append(nil)); err != nil {
		t.Fatalf("concurrent snapshot not canonical: %v", err)
	}
}

func TestRecordedMetrics(t *testing.T) {
	r := NewRecorder()
	r.Start(t0, 0)
	a := r.AddClient(Client{ID: "a", Relay: -1})
	b := r.AddClient(Client{ID: "b", Relay: -1})
	// a: two acked heartbeats at 10ms and 30ms latency; b: one timeout and
	// one orphan ack (no matching send).
	r.Record(EvSend, a, 1, t0)
	r.Record(EvAck, a, 1, t0.Add(10*time.Millisecond))
	r.Record(EvSend, a, 2, t0.Add(time.Second))
	r.Record(EvAck, a, 2, t0.Add(time.Second+30*time.Millisecond))
	r.Record(EvSend, b, 1, t0.Add(time.Second))
	r.Record(EvTimeout, b, 1, t0.Add(2*time.Second))
	r.Record(EvAck, b, 7, t0.Add(3*time.Second))

	tl, err := r.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	m := tl.RecordedMetrics()
	if m.Source != "recorded" || m.Sent != 3 || m.Delivered != 2 || m.Timeouts != 1 {
		t.Fatalf("metrics %+v", m)
	}
	if m.DeliveryRatio < 0.66 || m.DeliveryRatio > 0.67 {
		t.Fatalf("delivery ratio %v", m.DeliveryRatio)
	}
	// The orphan ack (seq 7 never sent) matches nothing: it must count
	// neither as a delivery nor as a latency sample.
	if m.AckLatency.Count != 2 {
		t.Fatalf("latency count %d", m.AckLatency.Count)
	}
	if m.AckLatency.P50Ms != 10 || m.AckLatency.MaxMs != 30 || m.AckLatency.MeanMs != 20 {
		t.Fatalf("latency %+v", m.AckLatency)
	}
}

func TestMetricsDigestSensitivity(t *testing.T) {
	m := Metrics{Source: "sim", Sent: 100, Delivered: 99}
	m.Finish()
	d := m.Digest()
	if d != m.Digest() {
		t.Fatal("digest not stable")
	}
	m2 := m
	m2.Delivered = 98
	m2.Finish()
	if m2.Digest() == d {
		t.Fatal("digest insensitive to delivered count")
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	if q := s.Quantiles(); q.Count != 0 || q.MaxMs != 0 {
		t.Fatalf("empty sample %+v", q)
	}
	for i := 100; i >= 1; i-- {
		s.Add(float64(i))
	}
	q := s.Quantiles()
	if q.Count != 100 || q.P50Ms != 50 || q.P95Ms != 95 || q.P99Ms != 99 || q.MaxMs != 100 {
		t.Fatalf("quantiles %+v", q)
	}
	if q.MeanMs != 50.5 {
		t.Fatalf("mean %v", q.MeanMs)
	}
	one := NewSample()
	one.Add(7)
	if q := one.Quantiles(); q.P50Ms != 7 || q.P99Ms != 7 {
		t.Fatalf("single-sample quantiles %+v", q)
	}
}

func TestParityReport(t *testing.T) {
	tl := &Timeline{Clients: []Client{{ID: "a", Relay: -1}}}
	rec := Metrics{Source: "recorded", Sent: 10, Delivered: 10}
	sim := Metrics{Source: "sim", Sent: 10, Delivered: 10, Signaling: Signaling{Uplinks: 4, Batches: 4, L3Messages: 32}}
	live := Metrics{Source: "live", Sent: 10, Delivered: 9}
	for _, m := range []*Metrics{&rec, &sim, &live} {
		m.Finish()
	}
	p := NewParityReport(tl, rec, sim, live)
	if p.TraceDigest != tl.Digest() || p.SimDigest != sim.Digest() {
		t.Fatal("report digests wrong")
	}
	if gap := p.DeliveryGap(); gap < 0.09 || gap > 0.11 {
		t.Fatalf("delivery gap %v", gap)
	}
	out := p.Table().String()
	for _, want := range []string{"delivery ratio", "ack p95", "uplink transactions", "recorded", "sim", "live"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	js, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"traceDigest"`, `"simDigest"`, `"deliveryRatio"`} {
		if !strings.Contains(string(js), want) {
			t.Fatalf("json missing %s", want)
		}
	}
}
