package cellular

import (
	"fmt"
	"time"
)

// ChannelConfig parameterizes the control-channel load model. The paper's
// operator-side motivation is that heartbeat signaling overloads the
// control channel ("serious overload in control channel … also known as
// the problem of signaling storm", Section I) and degrades service
// ("higher rate of paging failure", Section II-B).
type ChannelConfig struct {
	// Window is the load-measurement granularity.
	Window time.Duration
	// CapacityPerWindow is how many layer-3 messages the control channel
	// can absorb per window before overloading.
	CapacityPerWindow int
}

// DefaultChannelConfig returns a deliberately small-cell configuration
// (one-minute windows, 120 messages per window) so density sweeps cross the
// overload point at simulable population sizes.
func DefaultChannelConfig() ChannelConfig {
	return ChannelConfig{
		Window:            time.Minute,
		CapacityPerWindow: 120,
	}
}

// Validate reports whether the configuration is usable.
func (c ChannelConfig) Validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("cellular: channel window must be positive, got %v", c.Window)
	}
	if c.CapacityPerWindow <= 0 {
		return fmt.Errorf("cellular: channel capacity must be positive, got %d", c.CapacityPerWindow)
	}
	return nil
}

// ChannelReport summarizes control-channel load over a run.
type ChannelReport struct {
	// Windows is the number of measurement windows observed.
	Windows int
	// TotalMessages is the total layer-3 messages recorded.
	TotalMessages int
	// PeakWindowLoad is the busiest window's message count.
	PeakWindowLoad int
	// OverloadedWindows counts windows whose load exceeded capacity.
	OverloadedWindows int
	// DroppedMessages is the signaling volume beyond capacity, summed over
	// overloaded windows — the traffic that would have manifested as
	// paging failures and degraded service.
	DroppedMessages int
}

// PeakUtilization returns the busiest window's load as a fraction of
// capacity (may exceed 1 under overload).
func (r ChannelReport) PeakUtilization(cfg ChannelConfig) float64 {
	if cfg.CapacityPerWindow <= 0 {
		return 0
	}
	return float64(r.PeakWindowLoad) / float64(cfg.CapacityPerWindow)
}

// controlChannel accumulates per-window signaling load.
type controlChannel struct {
	cfg     ChannelConfig
	windows map[int]int
}

// EnableControlChannel turns on control-channel load tracking. It must be
// called before modems attach; already-attached modems are wired up too.
func (bs *BaseStation) EnableControlChannel(cfg ChannelConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	bs.channel = &controlChannel{cfg: cfg, windows: make(map[int]int)}
	for _, m := range bs.modems {
		bs.wireChannel(m)
	}
	return nil
}

// wireChannel hooks one modem's RRC signaling into the channel tracker.
func (bs *BaseStation) wireChannel(m *Modem) {
	if bs.channel == nil {
		return
	}
	m.machine.OnSignaling(func(msgs int) {
		idx := int(bs.sched.Now() / bs.channel.cfg.Window)
		bs.channel.windows[idx] += msgs
	})
}

// ChannelReport summarizes the recorded control-channel load. It returns a
// zero report when tracking was not enabled.
func (bs *BaseStation) ChannelReport() ChannelReport {
	var rep ChannelReport
	ch := bs.channel
	if ch == nil {
		return rep
	}
	for _, load := range ch.windows {
		rep.Windows++
		rep.TotalMessages += load
		if load > rep.PeakWindowLoad {
			rep.PeakWindowLoad = load
		}
		if load > ch.cfg.CapacityPerWindow {
			rep.OverloadedWindows++
			rep.DroppedMessages += load - ch.cfg.CapacityPerWindow
		}
	}
	return rep
}
