package cellular

import (
	"testing"
	"time"

	"d2dhb/internal/energy"
	"d2dhb/internal/hbmsg"
)

func TestChannelConfigValidate(t *testing.T) {
	if err := DefaultChannelConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultChannelConfig()
	bad.Window = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero window accepted")
	}
	bad = DefaultChannelConfig()
	bad.CapacityPerWindow = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestChannelTracksWindowLoad(t *testing.T) {
	s, bs := newBS(t)
	cfg := ChannelConfig{Window: 10 * time.Second, CapacityPerWindow: 10}
	if err := bs.EnableControlChannel(cfg); err != nil {
		t.Fatalf("EnableControlChannel: %v", err)
	}
	m, _ := attach(t, bs, "dev-1")

	// One send at t=0: setup (5 msgs) in window 0, release (3 msgs) at
	// t=5s, still window 0.
	if err := m.Send([]hbmsg.Heartbeat{hb("dev-1", 1, 0, time.Minute)}, energy.PhaseCellular); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// Another send at t=60s: setup in window 6, release at 65s in window 6.
	if _, err := s.At(60*time.Second, func() {
		if err := m.Send([]hbmsg.Heartbeat{hb("dev-1", 2, 60*time.Second, time.Minute)}, energy.PhaseCellular); err != nil {
			t.Errorf("Send: %v", err)
		}
	}); err != nil {
		t.Fatalf("At: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := bs.ChannelReport()
	if rep.Windows != 2 {
		t.Fatalf("windows = %d, want 2", rep.Windows)
	}
	if rep.TotalMessages != 16 {
		t.Fatalf("total = %d, want 16", rep.TotalMessages)
	}
	if rep.PeakWindowLoad != 8 {
		t.Fatalf("peak = %d, want 8", rep.PeakWindowLoad)
	}
	if rep.OverloadedWindows != 0 || rep.DroppedMessages != 0 {
		t.Fatalf("unexpected overload: %+v", rep)
	}
	if got := rep.PeakUtilization(cfg); got != 0.8 {
		t.Fatalf("peak utilization = %v, want 0.8", got)
	}
}

func TestChannelOverloadDetection(t *testing.T) {
	s, bs := newBS(t)
	cfg := ChannelConfig{Window: time.Minute, CapacityPerWindow: 20}
	if err := bs.EnableControlChannel(cfg); err != nil {
		t.Fatalf("EnableControlChannel: %v", err)
	}
	// Five devices each doing a full cycle (8 msgs) in the same window:
	// 40 messages ≫ 20 capacity.
	for i := 0; i < 5; i++ {
		id := hbmsg.DeviceID(rune('a' + i))
		m, _ := attach(t, bs, id)
		if err := m.Send([]hbmsg.Heartbeat{hb(id, 1, 0, time.Minute)}, energy.PhaseCellular); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := bs.ChannelReport()
	if rep.OverloadedWindows != 1 {
		t.Fatalf("overloaded windows = %d, want 1", rep.OverloadedWindows)
	}
	if rep.DroppedMessages != 40-20 {
		t.Fatalf("dropped = %d, want 20", rep.DroppedMessages)
	}
	if rep.PeakUtilization(cfg) != 2.0 {
		t.Fatalf("peak utilization = %v, want 2.0", rep.PeakUtilization(cfg))
	}
}

func TestChannelEnableAfterAttach(t *testing.T) {
	s, bs := newBS(t)
	m, _ := attach(t, bs, "dev-1")
	if err := bs.EnableControlChannel(DefaultChannelConfig()); err != nil {
		t.Fatalf("EnableControlChannel: %v", err)
	}
	if err := m.Send([]hbmsg.Heartbeat{hb("dev-1", 1, 0, time.Minute)}, energy.PhaseCellular); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if bs.ChannelReport().TotalMessages == 0 {
		t.Fatal("pre-attached modem not wired into channel")
	}
}

func TestChannelReportWithoutTracking(t *testing.T) {
	_, bs := newBS(t)
	if rep := bs.ChannelReport(); rep != (ChannelReport{}) {
		t.Fatalf("report without tracking = %+v, want zero", rep)
	}
	bad := ChannelConfig{}
	if err := bs.EnableControlChannel(bad); err == nil {
		t.Fatal("invalid channel config accepted")
	}
}
