// Package cellular models the cellular access network: a base station and
// per-device modems. A modem transmission drives the device's RRC state
// machine (generating layer-3 signaling traffic) and charges the device's
// energy ledger; the payload heartbeats are delivered network-side through
// the base station, where the IM server observes them.
package cellular

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"d2dhb/internal/energy"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/rrc"
	"d2dhb/internal/simtime"
)

// ErrDuplicateID reports an attach with an already-used device id.
var ErrDuplicateID = errors.New("cellular: duplicate device id")

// Delivery is one heartbeat observed at the network side.
type Delivery struct {
	// HB is the delivered heartbeat.
	HB hbmsg.Heartbeat
	// Via is the device whose cellular transmission carried the heartbeat
	// (the relay, when forwarded; the source itself otherwise).
	Via hbmsg.DeviceID
	// At is the delivery instant.
	At time.Duration
	// OnTime reports whether the heartbeat arrived before its deadline.
	OnTime bool
}

// BaseStation is the shared network side. All modems attach to it; it
// aggregates signaling counters and forwards delivered heartbeats to an
// observer (the IM server in the simulation).
type BaseStation struct {
	sched   *simtime.Scheduler
	modems  map[hbmsg.DeviceID]*Modem
	order   []hbmsg.DeviceID
	observe func(Delivery)
	channel *controlChannel

	deliveries int
	late       int
}

// NewBaseStation builds a base station on the scheduler.
func NewBaseStation(sched *simtime.Scheduler) (*BaseStation, error) {
	if sched == nil {
		return nil, errors.New("cellular: nil scheduler")
	}
	return &BaseStation{
		sched:  sched,
		modems: make(map[hbmsg.DeviceID]*Modem),
	}, nil
}

// OnDeliver registers the network-side observer for delivered heartbeats.
func (bs *BaseStation) OnDeliver(f func(Delivery)) { bs.observe = f }

// Attach registers a device modem. The ledger receives cellular energy
// charges; rrcCfg parameterizes the signaling model.
func (bs *BaseStation) Attach(id hbmsg.DeviceID, model energy.Model, rrcCfg rrc.Config, ledger *energy.Ledger) (*Modem, error) {
	if id == "" {
		return nil, errors.New("cellular: empty device id")
	}
	if ledger == nil {
		return nil, errors.New("cellular: nil ledger")
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("cellular: model: %w", err)
	}
	if _, ok := bs.modems[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	machine, err := rrc.NewMachine(bs.sched, rrcCfg)
	if err != nil {
		return nil, fmt.Errorf("cellular: rrc: %w", err)
	}
	m := &Modem{
		id:      id,
		bs:      bs,
		machine: machine,
		model:   model,
		ledger:  ledger,
	}
	bs.modems[id] = m
	bs.order = append(bs.order, id)
	bs.wireChannel(m)
	return m, nil
}

// Modem looks up an attached modem.
func (bs *BaseStation) Modem(id hbmsg.DeviceID) (*Modem, bool) {
	m, ok := bs.modems[id]
	return m, ok
}

// Modems returns all attached modems in attach order.
func (bs *BaseStation) Modems() []*Modem {
	out := make([]*Modem, 0, len(bs.order))
	for _, id := range bs.order {
		out = append(out, bs.modems[id])
	}
	return out
}

// TotalL3Messages sums layer-3 signaling messages across all modems — the
// quantity the operator wants minimized (Fig. 15).
func (bs *BaseStation) TotalL3Messages() int {
	total := 0
	for _, m := range bs.modems {
		total += m.Counters().L3Messages
	}
	return total
}

// TotalTransmissions sums cellular transmissions across all modems.
func (bs *BaseStation) TotalTransmissions() int {
	total := 0
	for _, m := range bs.modems {
		total += m.Counters().Transmissions
	}
	return total
}

// Deliveries returns how many heartbeats reached the network side, and how
// many of those were late.
func (bs *BaseStation) Deliveries() (total, late int) {
	return bs.deliveries, bs.late
}

// L3ByDevice returns per-device layer-3 message counts keyed by device id,
// in a deterministically ordered copy.
func (bs *BaseStation) L3ByDevice() map[hbmsg.DeviceID]int {
	out := make(map[hbmsg.DeviceID]int, len(bs.modems))
	ids := make([]string, 0, len(bs.modems))
	for id := range bs.modems {
		ids = append(ids, string(id))
	}
	slices.Sort(ids)
	for _, id := range ids {
		out[hbmsg.DeviceID(id)] = bs.modems[hbmsg.DeviceID(id)].Counters().L3Messages
	}
	return out
}

func (bs *BaseStation) deliver(hbs []hbmsg.Heartbeat, via hbmsg.DeviceID) {
	now := bs.sched.Now()
	for _, hb := range hbs {
		onTime := !hb.Expired(now)
		bs.deliveries++
		if !onTime {
			bs.late++
		}
		if bs.observe != nil {
			bs.observe(Delivery{HB: hb, Via: via, At: now, OnTime: onTime})
		}
	}
}

// Modem is one device's cellular interface.
type Modem struct {
	id      hbmsg.DeviceID
	bs      *BaseStation
	machine *rrc.Machine
	model   energy.Model
	ledger  *energy.Ledger
}

// ID returns the owning device id.
func (m *Modem) ID() hbmsg.DeviceID { return m.id }

// Counters returns the modem's RRC counters.
func (m *Modem) Counters() rrc.Counters { return m.machine.Counters() }

// State returns the current RRC state.
func (m *Modem) State() rrc.State { return m.machine.State() }

// Send transmits a batch of heartbeats in one cellular connection, charging
// the given energy phase (PhaseCellular for scheduled sends, PhaseFallback
// for duplicate sends after feedback loss). Aggregating several heartbeats
// into one Send is exactly the relay's signaling- and energy-saving lever.
func (m *Modem) Send(hbs []hbmsg.Heartbeat, phase energy.Phase) error {
	if len(hbs) == 0 {
		return errors.New("cellular: empty batch")
	}
	payload := 0
	for _, hb := range hbs {
		payload += hb.Size
	}
	if err := m.machine.Send(payload); err != nil {
		return fmt.Errorf("cellular: %w", err)
	}
	m.ledger.Add(phase, m.model.CellularTxCharge(len(hbs), payload))
	m.bs.deliver(hbs, m.id)
	return nil
}

// Shutdown releases any open RRC connection (end of simulation teardown).
func (m *Modem) Shutdown() { m.machine.ForceRelease() }
