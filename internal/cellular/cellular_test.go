package cellular

import (
	"errors"
	"testing"
	"time"

	"d2dhb/internal/energy"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/rrc"
	"d2dhb/internal/simtime"
)

func newBS(t *testing.T) (*simtime.Scheduler, *BaseStation) {
	t.Helper()
	s := simtime.NewScheduler(1)
	bs, err := NewBaseStation(s)
	if err != nil {
		t.Fatalf("NewBaseStation: %v", err)
	}
	return s, bs
}

func attach(t *testing.T, bs *BaseStation, id hbmsg.DeviceID) (*Modem, *energy.Ledger) {
	t.Helper()
	led := energy.NewLedger()
	m, err := bs.Attach(id, energy.DefaultModel(), rrc.DefaultConfig(), led)
	if err != nil {
		t.Fatalf("Attach(%s): %v", id, err)
	}
	return m, led
}

func hb(src hbmsg.DeviceID, seq uint64, origin, expiry time.Duration) hbmsg.Heartbeat {
	return hbmsg.Heartbeat{App: "t", Src: src, Seq: seq, Origin: origin, Expiry: expiry, Size: 54}
}

func TestNewBaseStationNilScheduler(t *testing.T) {
	if _, err := NewBaseStation(nil); err == nil {
		t.Fatal("nil scheduler accepted")
	}
}

func TestAttachValidation(t *testing.T) {
	_, bs := newBS(t)
	led := energy.NewLedger()
	if _, err := bs.Attach("", energy.DefaultModel(), rrc.DefaultConfig(), led); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := bs.Attach("a", energy.DefaultModel(), rrc.DefaultConfig(), nil); err == nil {
		t.Fatal("nil ledger accepted")
	}
	var badModel energy.Model
	if _, err := bs.Attach("a", badModel, rrc.DefaultConfig(), led); err == nil {
		t.Fatal("invalid model accepted")
	}
	var badRRC rrc.Config
	if _, err := bs.Attach("a", energy.DefaultModel(), badRRC, led); err == nil {
		t.Fatal("invalid rrc config accepted")
	}
	if _, err := bs.Attach("a", energy.DefaultModel(), rrc.DefaultConfig(), led); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if _, err := bs.Attach("a", energy.DefaultModel(), rrc.DefaultConfig(), led); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err = %v, want ErrDuplicateID", err)
	}
}

func TestSendChargesEnergyAndCountsSignaling(t *testing.T) {
	s, bs := newBS(t)
	m, led := attach(t, bs, "dev-1")
	model := energy.DefaultModel()

	if err := m.Send([]hbmsg.Heartbeat{hb("dev-1", 1, 0, time.Minute)}, energy.PhaseCellular); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if got := led.Phase(energy.PhaseCellular); got != model.CellularTxCharge(1, 54) {
		t.Fatalf("charge = %v, want %v", got, model.CellularTxCharge(1, 54))
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg := rrc.DefaultConfig()
	if got, want := m.Counters().L3Messages, cfg.SetupMessages+cfg.ReleaseMessages; got != want {
		t.Fatalf("L3 = %d, want %d", got, want)
	}
	if got := bs.TotalL3Messages(); got != m.Counters().L3Messages {
		t.Fatalf("bs total L3 = %d, want %d", got, m.Counters().L3Messages)
	}
	if got := bs.TotalTransmissions(); got != 1 {
		t.Fatalf("transmissions = %d, want 1", got)
	}
}

func TestSendEmptyBatchRejected(t *testing.T) {
	_, bs := newBS(t)
	m, _ := attach(t, bs, "dev-1")
	if err := m.Send(nil, energy.PhaseCellular); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestAggregatedSendIsOneConnection(t *testing.T) {
	s, bs := newBS(t)
	m, led := attach(t, bs, "relay-1")
	model := energy.DefaultModel()

	batch := []hbmsg.Heartbeat{
		hb("ue-1", 1, 0, time.Minute),
		hb("ue-2", 1, 0, time.Minute),
		hb("relay-1", 1, 0, time.Minute),
	}
	if err := m.Send(batch, energy.PhaseCellular); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	c := m.Counters()
	if c.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1 (single connection)", c.Promotions)
	}
	if got := led.Phase(energy.PhaseCellular); got != model.CellularTxCharge(3, 3*54) {
		t.Fatalf("charge = %v, want aggregated %v", got, model.CellularTxCharge(3, 3*54))
	}
	total, late := bs.Deliveries()
	if total != 3 || late != 0 {
		t.Fatalf("deliveries = %d/%d late, want 3/0", total, late)
	}
}

func TestDeliveryObserverAndLateness(t *testing.T) {
	s, bs := newBS(t)
	m, _ := attach(t, bs, "dev-1")

	var seen []Delivery
	bs.OnDeliver(func(d Delivery) { seen = append(seen, d) })

	// Deliver one on-time and one expired heartbeat at t=30s.
	if _, err := s.At(30*time.Second, func() {
		batch := []hbmsg.Heartbeat{
			hb("ue-1", 1, 0, time.Minute),    // deadline 60s: on time
			hb("ue-2", 1, 0, 10*time.Second), // deadline 10s: late
		}
		if err := m.Send(batch, energy.PhaseCellular); err != nil {
			t.Errorf("Send: %v", err)
		}
	}); err != nil {
		t.Fatalf("At: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seen) != 2 {
		t.Fatalf("observed %d deliveries, want 2", len(seen))
	}
	if !seen[0].OnTime || seen[1].OnTime {
		t.Fatalf("on-time flags = %v/%v, want true/false", seen[0].OnTime, seen[1].OnTime)
	}
	if seen[0].Via != "dev-1" || seen[0].At != 30*time.Second {
		t.Fatalf("delivery metadata wrong: %+v", seen[0])
	}
	total, late := bs.Deliveries()
	if total != 2 || late != 1 {
		t.Fatalf("deliveries = %d/%d late, want 2/1", total, late)
	}
}

func TestFallbackPhaseAccounting(t *testing.T) {
	_, bs := newBS(t)
	m, led := attach(t, bs, "dev-1")
	if err := m.Send([]hbmsg.Heartbeat{hb("dev-1", 1, 0, time.Minute)}, energy.PhaseFallback); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if led.Phase(energy.PhaseFallback) == 0 {
		t.Fatal("fallback phase not charged")
	}
	if led.Phase(energy.PhaseCellular) != 0 {
		t.Fatal("cellular phase charged for fallback send")
	}
}

func TestL3ByDevice(t *testing.T) {
	s, bs := newBS(t)
	m1, _ := attach(t, bs, "a")
	m2, _ := attach(t, bs, "b")
	if err := m1.Send([]hbmsg.Heartbeat{hb("a", 1, 0, time.Minute)}, energy.PhaseCellular); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	per := bs.L3ByDevice()
	if per["a"] == 0 {
		t.Fatal("device a has no signaling")
	}
	if per["b"] != 0 {
		t.Fatal("device b has signaling without sending")
	}
	if m2.State() != rrc.Idle {
		t.Fatal("idle device not idle")
	}
}

func TestModemLookupAndList(t *testing.T) {
	_, bs := newBS(t)
	attach(t, bs, "a")
	attach(t, bs, "b")
	if _, ok := bs.Modem("a"); !ok {
		t.Fatal("modem a not found")
	}
	if _, ok := bs.Modem("ghost"); ok {
		t.Fatal("ghost modem found")
	}
	modems := bs.Modems()
	if len(modems) != 2 || modems[0].ID() != "a" || modems[1].ID() != "b" {
		t.Fatalf("Modems() = %v", modems)
	}
}

func TestShutdownReleasesConnection(t *testing.T) {
	_, bs := newBS(t)
	m, _ := attach(t, bs, "dev-1")
	if err := m.Send([]hbmsg.Heartbeat{hb("dev-1", 1, 0, time.Minute)}, energy.PhaseCellular); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m.Shutdown()
	if m.State() != rrc.Idle {
		t.Fatalf("state after shutdown = %v, want IDLE", m.State())
	}
}
