package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"slices"
	"strconv"

	"d2dhb/internal/energy"
)

// WriteCanonical writes a canonical, field-by-field text rendering of the
// report. Every observable quantity of a run appears exactly once, floats
// are rendered with round-trip precision and map iteration is sorted, so
// two reports serialize identically iff every field matches bit-for-bit.
// It underpins Digest and exists separately so a digest mismatch can be
// diagnosed by diffing the two renderings.
func (r *Report) WriteCanonical(w io.Writer) {
	ff := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	fmt.Fprintf(w, "duration=%d\n", int64(r.Duration))
	fmt.Fprintf(w, "l3=%d deliveries=%d late=%d\n", r.TotalL3Messages, r.Deliveries, r.LateDeliveries)
	fmt.Fprintf(w, "channel=%+v\n", r.Channel)
	for _, d := range r.Devices {
		fmt.Fprintf(w, "device=%s role=%d total=%s avail=%s flaps=%d\n",
			d.ID, int(d.Role), ff(float64(d.Total)), ff(d.Availability), d.PresenceFlaps)
		phases := make([]energy.Phase, 0, len(d.Energy))
		for p := range d.Energy {
			phases = append(phases, p)
		}
		slices.Sort(phases)
		for _, p := range phases {
			fmt.Fprintf(w, "  energy %s=%s\n", p, ff(float64(d.Energy[p])))
		}
		fmt.Fprintf(w, "  rrc=%+v\n", d.RRC)
		if d.Relay != nil {
			fmt.Fprintf(w, "  relay=%+v\n", *d.Relay)
		}
		if d.UE != nil {
			fmt.Fprintf(w, "  ue=%+v\n", *d.UE)
		}
	}
}

// Digest returns a hex SHA-256 over the canonical rendering of the report:
// a single value that changes iff any observable output of the run changed.
// The determinism regression suite pins digests of mixed scenarios to
// goldens so that kernel and discovery optimizations can prove they left
// every seeded result bit-identical.
func (r *Report) Digest() string {
	h := sha256.New()
	r.WriteCanonical(h)
	return hex.EncodeToString(h.Sum(nil))
}
