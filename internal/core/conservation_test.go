package core

import (
	"testing"

	"d2dhb/internal/cellular"
	"d2dhb/internal/hbmsg"
)

// TestConservationAcrossRandomCrowds checks system-wide accounting
// identities over a spread of random crowd scenarios:
//
//  1. every UE heartbeat leaves the device exactly once
//     (generated == viaD2D + direct),
//  2. every forwarded heartbeat is resolved
//     (viaD2D == acks + fallbacks + still-pending + stranded-in-relay),
//  3. network-side deliveries equal the transmissions' payloads
//     (deliveries == relay own + relay forwarded + UE direct + fallbacks).
//
// Any lost, duplicated or double-counted message breaks one of these.
func TestConservationAcrossRandomCrowds(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 99, 512} {
		seed := seed
		sim, err := CrowdScenario(Options{Seed: seed, Duration: 3 * std().Period},
			std(), 4, 25, 80, 6)
		if err != nil {
			t.Fatalf("seed %d: CrowdScenario: %v", seed, err)
		}
		// Track per-source deliveries to catch duplicates.
		perSource := make(map[hbmsg.DeviceID]int)
		sim.OnDeliver(func(d cellular.Delivery) { perSource[d.HB.Src]++ })
		rep, err := sim.Run()
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}

		var (
			generated, viaD2D, direct, fallbacks, acks    int
			relayOwn, relayForwarded, collected, rejected int
			sendFailures                                  int
		)
		for _, d := range rep.Devices {
			if d.UE != nil {
				generated += d.UE.Generated
				viaD2D += d.UE.SentViaD2D
				direct += d.UE.DirectCellular
				fallbacks += d.UE.FallbackResends
				acks += d.UE.AcksReceived
				sendFailures += d.UE.SendErrors
			}
			if d.Relay != nil {
				relayOwn += d.Relay.OwnHeartbeats
				relayForwarded += d.Relay.ForwardedSent
				collected += d.Relay.Collected
				rejected += d.Relay.RejectedClosed + d.Relay.RejectedExpired
			}
		}
		if sendFailures != 0 {
			t.Fatalf("seed %d: unexpected send errors: %d", seed, sendFailures)
		}

		// (1) Every generated heartbeat leaves exactly once.
		if generated != viaD2D+direct {
			t.Fatalf("seed %d: generated %d != viaD2D %d + direct %d",
				seed, generated, viaD2D, direct)
		}

		// (2) Every forwarded heartbeat is accounted for. Pending =
		// forwarded but neither acked nor timed out at the horizon;
		// stranded = accepted by a relay whose flush lies beyond the
		// horizon. Both are bounded by what the relays still hold.
		unresolved := viaD2D - acks - fallbacks
		if unresolved < 0 {
			t.Fatalf("seed %d: more acks+fallbacks (%d) than forwards (%d)",
				seed, acks+fallbacks, viaD2D)
		}
		// Forwards either got collected or rejected at the relay.
		if viaD2D != collected+rejected {
			t.Fatalf("seed %d: forwards %d != collected %d + rejected %d",
				seed, viaD2D, collected, rejected)
		}
		// Collected messages either went out or are still pending in an
		// open window.
		stillHeld := collected - relayForwarded
		if stillHeld < 0 {
			t.Fatalf("seed %d: relays sent more (%d) than collected (%d)",
				seed, relayForwarded, collected)
		}

		// (3) Deliveries match transmissions. Relay own heartbeats may
		// have one un-flushed final-period message per relay.
		wantDeliveries := relayForwarded + direct + fallbacks
		gotForwardDeliveries := rep.Deliveries
		ownDelivered := 0
		for src, n := range perSource {
			if d, ok := rep.Device(src); ok && d.Relay != nil {
				ownDelivered += n
			}
		}
		gotForwardDeliveries -= ownDelivered
		if gotForwardDeliveries != wantDeliveries {
			t.Fatalf("seed %d: deliveries %d (non-own) != forwarded %d + direct %d + fallbacks %d",
				seed, gotForwardDeliveries, relayForwarded, direct, fallbacks)
		}
		if ownDelivered > relayOwn {
			t.Fatalf("seed %d: own deliveries %d exceed own heartbeats %d",
				seed, ownDelivered, relayOwn)
		}

		// No duplicate deliveries for any UE source unless a fallback
		// raced a live relay (acks and fallbacks are disjoint, so a
		// duplicate means src count > generated).
		for src, n := range perSource {
			d, ok := rep.Device(src)
			if !ok || d.UE == nil {
				continue
			}
			if n > d.UE.Generated {
				t.Fatalf("seed %d: device %s delivered %d times for %d generated",
					seed, src, n, d.UE.Generated)
			}
		}
	}
}
