package core

import (
	"fmt"
	"testing"
	"time"

	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
)

// unboundedMob wraps a mobility without exposing a speed bound, exercising
// the discovery index's linear fallback for custom mobility models.
type unboundedMob struct{ inner geo.Mobility }

func (u unboundedMob) Pos(at time.Duration) geo.Point { return u.inner.Pos(at) }

// mixedCrowd builds a crowd with every mobility class the simulator knows:
// static devices, speed-bounded walkers/orbiters/line movers and a custom
// unbounded mobility. It is the determinism suite's worst-case topology —
// if the spatial index or the event kernel perturbed anything observable,
// some device's energy ledger, RRC counters or delivery stats would drift.
func mixedCrowd(t *testing.T, seed int64) *Simulation {
	t.Helper()
	profile := hbmsg.StandardHeartbeat()
	sim, err := New(Options{Seed: seed, Duration: 2*profile.Period + 30*time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	area := geo.Square(120)
	rng := sim.Scheduler().Rand()
	walker := func(id string) geo.Mobility {
		w, err := geo.NewRandomWaypoint(area, area.RandomPoint(rng), 0.5, 1.8, 5*time.Second, seed+int64(len(id)))
		if err != nil {
			t.Fatalf("waypoint %s: %v", id, err)
		}
		return w
	}
	for i := 0; i < 6; i++ {
		mob := geo.Mobility(geo.Static{P: area.RandomPoint(rng)})
		if i%2 == 1 {
			mob = walker(string(rune('a' + i)))
		}
		if _, err := sim.AddRelay(RelaySpec{
			ID:          hbmsg.DeviceID(rune('a'+i)) + "-relay",
			Profile:     profile,
			Mobility:    mob,
			Capacity:    6,
			StartOffset: time.Duration(rng.Int63n(int64(profile.Period))),
		}); err != nil {
			t.Fatalf("AddRelay %d: %v", i, err)
		}
	}
	for i := 0; i < 40; i++ {
		var mob geo.Mobility
		p := area.RandomPoint(rng)
		switch i % 5 {
		case 0:
			mob = geo.Static{P: p}
		case 1:
			mob = walker(string(rune('0' + i%10)))
		case 2:
			mob = geo.Orbit{Center: p, Radius: 8, Omega: 0.01, Phase: float64(i)}
		case 3:
			mob = geo.Line{From: p, To: area.Clamp(p.Add(30, -20)), Speed: 1.2, Start: 40 * time.Second}
		default:
			mob = unboundedMob{inner: geo.Orbit{Center: p, Radius: 5, Omega: 0.02}}
		}
		if _, err := sim.AddUE(UESpec{
			ID:          hbmsg.DeviceID(fmt.Sprintf("ue-%02d", i)),
			Profile:     profile,
			Mobility:    mob,
			StartOffset: time.Duration(rng.Int63n(int64(profile.Period))),
		}); err != nil {
			t.Fatalf("AddUE %d: %v", i, err)
		}
	}
	return sim
}

// goldenDigests pins the full-report digest of the mixed crowd per seed,
// recorded from the pre-optimization tree (container/heap kernel, linear
// Scan). The grid index and the pooled 4-ary kernel must keep every seeded
// run bit-identical to these values.
var goldenDigests = map[int64]string{
	1:  "caaa1dcc64486c83837ddc4e7979fca937b2f4502c0cfe44149b201a15a491c5",
	7:  "f59ac945b83e16d8dbd483da7ee0b3a9fcb7a9465fc7cb229d368c1666952ccc",
	42: "a1f98c2d21afac48808ef30e518e1acc5f3865dbae8abe4cea79b947a827c31c",
}

// TestMixedCrowdDeterminismGolden runs the mixed crowd at several seeds,
// twice per seed, and checks (a) repeat runs agree and (b) the digest
// matches the golden recorded from main. Run with -run Determinism -v to
// print fresh digests when the observable model legitimately changes.
func TestMixedCrowdDeterminismGolden(t *testing.T) {
	for seed, want := range goldenDigests {
		var digests []string
		for rep := 0; rep < 2; rep++ {
			rep, err := mixedCrowd(t, seed).Run()
			if err != nil {
				t.Fatalf("seed %d: Run: %v", seed, err)
			}
			digests = append(digests, rep.Digest())
		}
		if digests[0] != digests[1] {
			t.Fatalf("seed %d: repeat runs diverged: %s vs %s", seed, digests[0], digests[1])
		}
		t.Logf("seed %d digest %s", seed, digests[0])
		if want == "" {
			t.Errorf("seed %d: golden digest not recorded; pin %s", seed, digests[0])
			continue
		}
		if digests[0] != want {
			t.Errorf("seed %d: digest %s != golden %s (observable simulation output changed)", seed, digests[0], want)
		}
	}
}
