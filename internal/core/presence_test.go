package core

import (
	"testing"
	"time"

	"d2dhb/internal/cellular"
	"d2dhb/internal/geo"
	"d2dhb/internal/trace"
)

func TestAvailabilityPerfectInHappyPath(t *testing.T) {
	sim, err := PairScenario(Options{Seed: 1, Duration: 6 * std().Period}, std(), 1, 1, 8)
	if err != nil {
		t.Fatalf("PairScenario: %v", err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range rep.Devices {
		if d.Availability < 0.999 {
			t.Errorf("%s availability = %v, want 1 (flaps %d)", d.ID, d.Availability, d.PresenceFlaps)
		}
		if d.PresenceFlaps != 0 {
			t.Errorf("%s flapped %d times", d.ID, d.PresenceFlaps)
		}
	}
}

func TestAvailabilityDropsWhenRelayDies(t *testing.T) {
	// Relay dies right after collecting the second heartbeat; the UE's
	// fallback delivers late, so the server sees an offline gap.
	sim, err := New(Options{Seed: 2, Duration: 8 * std().Period})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	relay, err := sim.AddRelay(RelaySpec{ID: "relay", Profile: std(), Capacity: 8})
	if err != nil {
		t.Fatalf("AddRelay: %v", err)
	}
	ue, err := sim.AddUE(UESpec{
		ID: "ue", Profile: std(),
		Mobility:    geo.Static{P: geo.Point{X: 1}},
		StartOffset: 20 * time.Second,
	})
	if err != nil {
		t.Fatalf("AddUE: %v", err)
	}
	// Kill the relay mid-second-period, after the second forward.
	if _, err := sim.Scheduler().At(std().Period+30*time.Second, relay.Stop); err != nil {
		t.Fatalf("At: %v", err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := ue.Stats().FallbackResends; got < 1 {
		t.Fatalf("fallbacks = %d, want >= 1", got)
	}
	ueRep, _ := rep.Device("ue")
	if ueRep.PresenceFlaps < 1 {
		t.Fatalf("UE never flapped offline despite relay death (availability %v)", ueRep.Availability)
	}
	if ueRep.Availability >= 1 {
		t.Fatalf("availability = %v, want < 1", ueRep.Availability)
	}
	// After recovery the UE goes direct: availability stays high overall.
	if ueRep.Availability < 0.5 {
		t.Fatalf("availability = %v, want mostly online", ueRep.Availability)
	}
}

func TestOnDeliverObserverChainsWithPresence(t *testing.T) {
	// A user observer must receive every delivery while presence tracking
	// keeps working underneath.
	sim, err := PairScenario(Options{Seed: 3, Duration: 2 * std().Period}, std(), 1, 1, 8)
	if err != nil {
		t.Fatalf("PairScenario: %v", err)
	}
	seen := 0
	sim.OnDeliver(func(d cellular.Delivery) { seen++ })
	rep, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if seen != rep.Deliveries {
		t.Fatalf("observer saw %d deliveries, report has %d", seen, rep.Deliveries)
	}
	ue, _ := rep.Device("ue-01")
	if ue.Availability <= 0 {
		t.Fatal("presence tracking broken with user observer installed")
	}
}

func TestTracerCapturesFullLifecycle(t *testing.T) {
	var rec trace.Recorder
	opts := Options{Seed: 1, Duration: 3 * std().Period, Tracer: &rec}
	sim, err := PairScenario(opts, std(), 1, 1, 8)
	if err != nil {
		t.Fatalf("PairScenario: %v", err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ue, _ := rep.Device("ue-01")

	for _, want := range []struct {
		kind trace.Kind
		n    int
	}{
		{trace.KindGenerated, ue.UE.Generated + 3 /* relay own heartbeats? none: relays don't emit generated */},
		{trace.KindD2DSend, ue.UE.SentViaD2D},
		{trace.KindCollect, ue.UE.SentViaD2D},
		{trace.KindAck, ue.UE.AcksReceived},
	} {
		got := len(rec.ByKind(want.kind))
		if want.kind == trace.KindGenerated {
			// Only UEs emit hb-generated; the relay's own heartbeats are
			// visible via flush events.
			if got != ue.UE.Generated {
				t.Errorf("%s events = %d, want %d", want.kind, got, ue.UE.Generated)
			}
			continue
		}
		if got != want.n {
			t.Errorf("%s events = %d, want %d", want.kind, got, want.n)
		}
	}
	// One match, flushes with batch sizes, and every delivery traced.
	if got := len(rec.ByKind(trace.KindMatch)); got != 1 {
		t.Errorf("match events = %d, want 1", got)
	}
	if got := len(rec.ByKind(trace.KindDelivery)); got != rep.Deliveries {
		t.Errorf("delivery events = %d, want %d", got, rep.Deliveries)
	}
	for _, f := range rec.ByKind(trace.KindFlush) {
		if f.N < 1 || f.Reason == "" {
			t.Errorf("flush event malformed: %+v", f)
		}
	}
	// All events carry device and non-decreasing-ish timestamps.
	for _, ev := range rec.Events() {
		if ev.Device == "" {
			t.Fatalf("event without device: %+v", ev)
		}
	}
}
