// Package core assembles the complete D2D heartbeat-relaying framework: it
// wires the D2D Detector (discovery/connection), Message Monitor (per-app
// heartbeat generation) and Message Scheduler (Algorithm 1) onto the
// simulated substrates — discrete-event clock, radio medium, RRC/cellular
// network and energy model — and produces per-device and aggregate reports.
package core

import (
	"errors"
	"fmt"
	"time"

	"d2dhb/internal/cellular"
	"d2dhb/internal/d2d"
	"d2dhb/internal/device"
	"d2dhb/internal/energy"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/matching"
	"d2dhb/internal/presence"
	"d2dhb/internal/radio"
	"d2dhb/internal/rrc"
	"d2dhb/internal/sched"
	"d2dhb/internal/simtime"
	"d2dhb/internal/trace"
)

// Options parameterize a Simulation.
type Options struct {
	// Seed drives every random choice; equal seeds reproduce runs
	// exactly.
	Seed int64
	// Duration is the simulated horizon.
	Duration time.Duration
	// Technique selects the D2D radio (Wi-Fi Direct by default).
	Technique radio.Technique
	// EnergyModel holds the charge constants; zero value selects the
	// paper calibration.
	EnergyModel *energy.Model
	// RRC holds the signaling model; zero value selects the default.
	RRC *rrc.Config
	// Match configures UE relay selection; zero value selects the
	// default.
	Match *matching.Config
	// Policy selects the relay scheduling policy (Algorithm 1 by
	// default).
	Policy sched.Kind
	// FixedDelay applies when Policy is KindFixedDelay.
	FixedDelay time.Duration
	// FeedbackTimeout overrides the UE ack wait (0 = default).
	FeedbackTimeout time.Duration
	// DisableD2D runs the original system: every device sends its own
	// heartbeats directly over cellular.
	DisableD2D bool
	// Channel enables control-channel load tracking (signaling-storm
	// analysis) when non-nil.
	Channel *cellular.ChannelConfig
	// Tracer receives one structured event per load-bearing action when
	// non-nil (see internal/trace).
	Tracer trace.Tracer
}

func (o Options) withDefaults() (Options, error) {
	if o.Duration <= 0 {
		return o, fmt.Errorf("core: duration must be positive, got %v", o.Duration)
	}
	if o.Technique == 0 {
		o.Technique = radio.WiFiDirect
	}
	if o.EnergyModel == nil {
		m := energy.DefaultModel()
		o.EnergyModel = &m
	}
	if o.RRC == nil {
		c := rrc.DefaultConfig()
		o.RRC = &c
	}
	if o.Match == nil {
		c := matching.DefaultConfig()
		o.Match = &c
	}
	if o.Policy == 0 {
		o.Policy = sched.KindNagle
	}
	return o, nil
}

// RelaySpec describes one relay device to add to the simulation.
type RelaySpec struct {
	ID          hbmsg.DeviceID
	Profile     hbmsg.AppProfile
	Mobility    geo.Mobility
	Capacity    int
	StartOffset time.Duration
}

// UESpec describes one UE device to add to the simulation.
type UESpec struct {
	ID      hbmsg.DeviceID
	Profile hbmsg.AppProfile
	// ExtraProfiles adds more apps to the same device, each with its own
	// heartbeat loop.
	ExtraProfiles []hbmsg.AppProfile
	Mobility      geo.Mobility
	StartOffset   time.Duration
}

// Simulation is a configured scenario ready to run.
type Simulation struct {
	opts   Options
	sched  *simtime.Scheduler
	medium *d2d.Medium
	bs     *cellular.BaseStation

	relays   []*device.Relay
	ues      []*device.UE
	ledgers  map[hbmsg.DeviceID]*energy.Ledger
	roles    map[hbmsg.DeviceID]d2d.Role
	order    []hbmsg.DeviceID
	tracker  *presence.Tracker
	observer func(cellular.Delivery)
	ran      bool
}

// New builds an empty simulation; add devices with AddRelay/AddUE, then
// Run.
func New(opts Options) (*Simulation, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	s := simtime.NewScheduler(opts.Seed)
	profile, err := radio.ProfileFor(opts.Technique)
	if err != nil {
		return nil, err
	}
	medium, err := d2d.NewMedium(s, d2d.Config{Profile: profile, Model: *opts.EnergyModel})
	if err != nil {
		return nil, err
	}
	bs, err := cellular.NewBaseStation(s)
	if err != nil {
		return nil, err
	}
	if opts.Channel != nil {
		if err := bs.EnableControlChannel(*opts.Channel); err != nil {
			return nil, err
		}
	}
	sim := &Simulation{
		opts:    opts,
		sched:   s,
		medium:  medium,
		bs:      bs,
		ledgers: make(map[hbmsg.DeviceID]*energy.Ledger),
		roles:   make(map[hbmsg.DeviceID]d2d.Role),
		tracker: presence.NewTracker(),
	}
	bs.OnDeliver(func(d cellular.Delivery) {
		// Out-of-order deliveries cannot occur: the event loop is
		// single-threaded and time is monotone.
		_ = sim.tracker.Deliver(d.HB, d.At)
		trace.Emit(opts.Tracer, trace.Event{
			AtMs:   trace.At(d.At),
			Device: string(d.HB.Src),
			Kind:   trace.KindDelivery,
			App:    d.HB.App,
			Seq:    d.HB.Seq,
			Peer:   string(d.Via),
			OnTime: d.OnTime,
		})
		if sim.observer != nil {
			sim.observer(d)
		}
	})
	return sim, nil
}

// OnDeliver registers an additional observer for network-side heartbeat
// deliveries (presence tracking stays active).
func (sim *Simulation) OnDeliver(f func(cellular.Delivery)) { sim.observer = f }

// Scheduler exposes the simulation clock, e.g. to inject failures at a
// chosen instant before Run.
func (sim *Simulation) Scheduler() *simtime.Scheduler { return sim.sched }

// BaseStation exposes the network side for custom observers.
func (sim *Simulation) BaseStation() *cellular.BaseStation { return sim.bs }

// AddRelay registers a relay device. Under DisableD2D the device is
// downgraded to a plain cellular sender, so the same topology can be run
// as the original system.
func (sim *Simulation) AddRelay(spec RelaySpec) (*device.Relay, error) {
	if sim.ran {
		return nil, errors.New("core: simulation already ran")
	}
	if spec.Mobility == nil {
		spec.Mobility = geo.Static{}
	}
	if spec.Capacity <= 0 {
		spec.Capacity = 8
	}
	led := energy.NewLedger()
	modem, err := sim.bs.Attach(spec.ID, *sim.opts.EnergyModel, *sim.opts.RRC, led)
	if err != nil {
		return nil, err
	}
	node, err := sim.medium.Join(spec.ID, d2d.RoleRelay, spec.Mobility, led)
	if err != nil {
		return nil, err
	}
	sim.ledgers[spec.ID] = led
	sim.roles[spec.ID] = d2d.RoleRelay
	sim.order = append(sim.order, spec.ID)

	if sim.opts.DisableD2D {
		// Original system: the would-be relay just sends its own
		// heartbeats directly; register it as a D2D-disabled UE.
		ue, err := device.NewUE(sim.sched, node, modem, device.UEConfig{
			ID:          spec.ID,
			Profile:     spec.Profile,
			Match:       *sim.opts.Match,
			StartOffset: spec.StartOffset,
			DisableD2D:  true,
			Tracer:      sim.opts.Tracer,
		})
		if err != nil {
			return nil, err
		}
		sim.ues = append(sim.ues, ue)
		return nil, nil
	}

	policy, err := sched.New(sim.opts.Policy, spec.Capacity, spec.Profile.Period, sim.opts.FixedDelay)
	if err != nil {
		return nil, err
	}
	relay, err := device.NewRelay(sim.sched, node, modem, device.RelayConfig{
		ID:          spec.ID,
		Profile:     spec.Profile,
		Capacity:    spec.Capacity,
		Policy:      policy,
		StartOffset: spec.StartOffset,
		Tracer:      sim.opts.Tracer,
	})
	if err != nil {
		return nil, err
	}
	sim.relays = append(sim.relays, relay)
	return relay, nil
}

// AddUE registers a UE device.
func (sim *Simulation) AddUE(spec UESpec) (*device.UE, error) {
	if sim.ran {
		return nil, errors.New("core: simulation already ran")
	}
	if spec.Mobility == nil {
		spec.Mobility = geo.Static{}
	}
	led := energy.NewLedger()
	modem, err := sim.bs.Attach(spec.ID, *sim.opts.EnergyModel, *sim.opts.RRC, led)
	if err != nil {
		return nil, err
	}
	node, err := sim.medium.Join(spec.ID, d2d.RoleUE, spec.Mobility, led)
	if err != nil {
		return nil, err
	}
	ue, err := device.NewUE(sim.sched, node, modem, device.UEConfig{
		ID:              spec.ID,
		Profile:         spec.Profile,
		ExtraProfiles:   spec.ExtraProfiles,
		Match:           *sim.opts.Match,
		FeedbackTimeout: sim.opts.FeedbackTimeout,
		StartOffset:     spec.StartOffset,
		DisableD2D:      sim.opts.DisableD2D,
		Tracer:          sim.opts.Tracer,
	})
	if err != nil {
		return nil, err
	}
	sim.ledgers[spec.ID] = led
	sim.roles[spec.ID] = d2d.RoleUE
	sim.order = append(sim.order, spec.ID)
	sim.ues = append(sim.ues, ue)
	return ue, nil
}

// Run starts every device and executes the scenario to the configured
// horizon, returning the report. A simulation can only run once.
func (sim *Simulation) Run() (*Report, error) {
	if sim.ran {
		return nil, errors.New("core: simulation already ran")
	}
	if len(sim.order) == 0 {
		return nil, errors.New("core: no devices added")
	}
	sim.ran = true
	for _, r := range sim.relays {
		if err := r.Start(); err != nil {
			return nil, err
		}
	}
	for _, u := range sim.ues {
		if err := u.Start(); err != nil {
			return nil, err
		}
	}
	if err := sim.sched.RunUntil(sim.opts.Duration); err != nil {
		return nil, fmt.Errorf("core: run: %w", err)
	}
	return sim.report(), nil
}

func (sim *Simulation) report() *Report {
	rep := &Report{
		Duration: sim.opts.Duration,
		byID:     make(map[hbmsg.DeviceID]*DeviceReport, len(sim.order)),
	}
	relayByID := make(map[hbmsg.DeviceID]*device.Relay, len(sim.relays))
	for _, r := range sim.relays {
		relayByID[r.ID()] = r
	}
	ueByID := make(map[hbmsg.DeviceID]*device.UE, len(sim.ues))
	for _, u := range sim.ues {
		ueByID[u.ID()] = u
	}
	for _, id := range sim.order {
		led := sim.ledgers[id]
		modem, _ := sim.bs.Modem(id)
		_, flaps, _ := sim.tracker.Stats(id, sim.opts.Duration)
		dr := &DeviceReport{
			ID:            id,
			Role:          sim.roles[id],
			Energy:        led.Snapshot(),
			Total:         led.Total(),
			RRC:           modem.Counters(),
			Availability:  sim.tracker.Availability(id, sim.opts.Duration),
			PresenceFlaps: flaps,
		}
		if r, ok := relayByID[id]; ok {
			st := r.Stats()
			dr.Relay = &st
		}
		if u, ok := ueByID[id]; ok {
			st := u.Stats()
			dr.UE = &st
		}
		rep.Devices = append(rep.Devices, dr)
		rep.byID[id] = dr
	}
	rep.TotalL3Messages = sim.bs.TotalL3Messages()
	rep.Deliveries, rep.LateDeliveries = sim.bs.Deliveries()
	rep.Channel = sim.bs.ChannelReport()
	return rep
}

// DeviceReport is one device's share of the results.
type DeviceReport struct {
	ID     hbmsg.DeviceID
	Role   d2d.Role
	Energy map[energy.Phase]energy.MicroAmpHours
	Total  energy.MicroAmpHours
	RRC    rrc.Counters
	// Availability is the fraction of time the device was online at the
	// IM server between its first delivered heartbeat and the horizon —
	// the instantaneity the framework must preserve (Section III).
	Availability float64
	// PresenceFlaps counts offline→online transitions at the server.
	PresenceFlaps int
	Relay         *device.RelayStats // nil for UEs
	UE            *device.UEStats    // nil for relays
}

// Report aggregates a finished run.
type Report struct {
	Duration        time.Duration
	Devices         []*DeviceReport
	TotalL3Messages int
	Deliveries      int
	LateDeliveries  int
	// Channel is the control-channel load summary (zero unless
	// Options.Channel enabled tracking).
	Channel cellular.ChannelReport

	byID map[hbmsg.DeviceID]*DeviceReport
}

// Device returns the report for one device.
func (r *Report) Device(id hbmsg.DeviceID) (*DeviceReport, bool) {
	d, ok := r.byID[id]
	return d, ok
}

// TotalEnergy sums charge across all devices.
func (r *Report) TotalEnergy() energy.MicroAmpHours {
	var sum energy.MicroAmpHours
	for _, d := range r.Devices {
		sum += d.Total
	}
	return sum
}

// EnergyByRole sums charge across devices with the given role.
func (r *Report) EnergyByRole(role d2d.Role) energy.MicroAmpHours {
	var sum energy.MicroAmpHours
	for _, d := range r.Devices {
		if d.Role == role {
			sum += d.Total
		}
	}
	return sum
}

// OnTimeRate returns the fraction of deliveries that met their deadline.
func (r *Report) OnTimeRate() float64 {
	if r.Deliveries == 0 {
		return 0
	}
	return float64(r.Deliveries-r.LateDeliveries) / float64(r.Deliveries)
}
