package core

import (
	"testing"
	"time"

	"d2dhb/internal/d2d"
	"d2dhb/internal/energy"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/sched"
)

func std() hbmsg.AppProfile { return hbmsg.StandardHeartbeat() }

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := New(Options{Duration: time.Hour, Technique: 99}); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

func TestRunRequiresDevices(t *testing.T) {
	sim, err := New(Options{Duration: time.Hour})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("empty simulation ran")
	}
}

func TestRunOnlyOnce(t *testing.T) {
	sim, err := New(Options{Duration: time.Hour, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := sim.AddUE(UESpec{ID: "u", Profile: std()}); err != nil {
		t.Fatalf("AddUE: %v", err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
	if _, err := sim.AddUE(UESpec{ID: "u2", Profile: std()}); err == nil {
		t.Fatal("AddUE after Run accepted")
	}
	if _, err := sim.AddRelay(RelaySpec{ID: "r", Profile: std()}); err == nil {
		t.Fatal("AddRelay after Run accepted")
	}
}

func TestPairScenarioEndToEnd(t *testing.T) {
	sim, err := PairScenario(Options{Seed: 1, Duration: 5 * std().Period}, std(), 1, 1, 8)
	if err != nil {
		t.Fatalf("PairScenario: %v", err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Devices) != 2 {
		t.Fatalf("devices = %d, want 2", len(rep.Devices))
	}
	relay, ok := rep.Device("relay")
	if !ok || relay.Role != d2d.RoleRelay || relay.Relay == nil {
		t.Fatalf("relay report wrong: %+v", relay)
	}
	ue, ok := rep.Device("ue-01")
	if !ok || ue.Role != d2d.RoleUE || ue.UE == nil {
		t.Fatalf("ue report wrong: %+v", ue)
	}
	if ue.UE.SentViaD2D == 0 {
		t.Fatal("no D2D forwarding happened")
	}
	if ue.RRC.Transmissions != 0 {
		t.Fatalf("UE transmitted %d times over cellular, want 0", ue.RRC.Transmissions)
	}
	if rep.TotalL3Messages == 0 || rep.Deliveries == 0 {
		t.Fatalf("empty aggregates: %+v", rep)
	}
	if rep.LateDeliveries != 0 {
		t.Fatalf("late deliveries = %d, want 0", rep.LateDeliveries)
	}
	if got := rep.OnTimeRate(); got != 1 {
		t.Fatalf("on-time rate = %v, want 1", got)
	}
	if rep.TotalEnergy() != relay.Total+ue.Total {
		t.Fatal("TotalEnergy mismatch")
	}
	if rep.EnergyByRole(d2d.RoleUE) != ue.Total {
		t.Fatal("EnergyByRole mismatch")
	}
}

func TestOriginalScenarioNoD2D(t *testing.T) {
	sim, err := OriginalScenario(Options{Seed: 1, Duration: 3 * std().Period}, std(), 2, 1)
	if err != nil {
		t.Fatalf("OriginalScenario: %v", err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range rep.Devices {
		if d.Energy[energy.PhaseD2DSend] != 0 || d.Energy[energy.PhaseDiscovery] != 0 {
			t.Fatalf("device %s has D2D energy in original system", d.ID)
		}
		if d.RRC.Transmissions == 0 {
			t.Fatalf("device %s never transmitted", d.ID)
		}
	}
}

func TestSchemeBeatsOriginalOnSignaling(t *testing.T) {
	// Headline: > 50 % signaling saving for the relay + 1 UE pair over 10
	// periods.
	horizon := 10 * std().Period
	scheme, err := PairScenario(Options{Seed: 5, Duration: horizon}, std(), 1, 1, 8)
	if err != nil {
		t.Fatalf("PairScenario: %v", err)
	}
	schemeRep, err := scheme.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	orig, err := OriginalScenario(Options{Seed: 5, Duration: horizon}, std(), 1, 1)
	if err != nil {
		t.Fatalf("OriginalScenario: %v", err)
	}
	origRep, err := orig.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	saving := 1 - float64(schemeRep.TotalL3Messages)/float64(origRep.TotalL3Messages)
	if saving < 0.45 {
		t.Fatalf("signaling saving = %.1f%% (%d vs %d), want >= 45%%",
			saving*100, schemeRep.TotalL3Messages, origRep.TotalL3Messages)
	}
}

func TestPolicyOptionImmediateIncreasesSignaling(t *testing.T) {
	// UEs spread across the period (unsynchronized apps): with the
	// immediate policy each forward opens its own RRC connection, while
	// Algorithm 1 batches everything into one.
	horizon := 6 * std().Period
	run := func(kind sched.Kind) int {
		sim, err := New(Options{Seed: 3, Duration: horizon, Policy: kind})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := sim.AddRelay(RelaySpec{ID: "relay", Profile: std(), Capacity: 8}); err != nil {
			t.Fatalf("AddRelay: %v", err)
		}
		for i := 0; i < 3; i++ {
			if _, err := sim.AddUE(UESpec{
				ID:          hbmsg.DeviceID(rune('a' + i)),
				Profile:     std(),
				Mobility:    geo.Static{P: geo.Point{X: 1, Y: float64(i)}},
				StartOffset: time.Duration(20+90*i) * time.Second,
			}); err != nil {
				t.Fatalf("AddUE: %v", err)
			}
		}
		rep, err := sim.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep.TotalL3Messages
	}
	nagle := run(sched.KindNagle)
	immediate := run(sched.KindImmediate)
	if immediate <= nagle {
		t.Fatalf("immediate policy L3 %d <= nagle %d, batching gained nothing", immediate, nagle)
	}
}

func TestCrowdScenario(t *testing.T) {
	sim, err := CrowdScenario(Options{Seed: 7, Duration: 2 * std().Period}, std(), 3, 12, 60, 8)
	if err != nil {
		t.Fatalf("CrowdScenario: %v", err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Devices) != 15 {
		t.Fatalf("devices = %d, want 15", len(rep.Devices))
	}
	forwarded := 0
	for _, d := range rep.Devices {
		if d.UE != nil {
			forwarded += d.UE.SentViaD2D
		}
	}
	if forwarded == 0 {
		t.Fatal("no UE forwarded in a 60 m crowd")
	}
}

func TestCrowdScenarioValidation(t *testing.T) {
	opts := Options{Seed: 1, Duration: time.Hour}
	if _, err := CrowdScenario(opts, std(), -1, 5, 50, 8); err == nil {
		t.Fatal("negative relays accepted")
	}
	if _, err := CrowdScenario(opts, std(), 1, 5, 0, 8); err == nil {
		t.Fatal("zero side accepted")
	}
	if _, err := PairScenario(opts, std(), -2, 1, 8); err == nil {
		t.Fatal("negative UEs accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, energy.MicroAmpHours) {
		sim, err := CrowdScenario(Options{Seed: 11, Duration: 2 * std().Period}, std(), 2, 8, 50, 8)
		if err != nil {
			t.Fatalf("CrowdScenario: %v", err)
		}
		rep, err := sim.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep.TotalL3Messages, rep.TotalEnergy()
	}
	l1, e1 := run()
	l2, e2 := run()
	if l1 != l2 || e1 != e2 {
		t.Fatalf("runs diverged: L3 %d vs %d, energy %v vs %v", l1, l2, e1, e2)
	}
}

func TestFailureInjectionViaScheduler(t *testing.T) {
	sim, err := New(Options{Seed: 1, Duration: 400 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	relay, err := sim.AddRelay(RelaySpec{ID: "relay", Profile: std(), Mobility: geo.Static{}, Capacity: 8})
	if err != nil {
		t.Fatalf("AddRelay: %v", err)
	}
	ue, err := sim.AddUE(UESpec{ID: "ue", Profile: std(), Mobility: geo.Static{P: geo.Point{X: 1}}, StartOffset: 10 * time.Second})
	if err != nil {
		t.Fatalf("AddUE: %v", err)
	}
	if _, err := sim.Scheduler().At(30*time.Second, relay.Stop); err != nil {
		t.Fatalf("At: %v", err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := ue.Stats().FallbackResends; got < 1 {
		t.Fatalf("fallback resends = %d, want >= 1 after relay death", got)
	}
}
