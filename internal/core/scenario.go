package core

import (
	"fmt"
	"time"

	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
)

// PairScenario builds the paper's canonical measurement setup: one static
// relay at the origin and n UEs placed at the given distance (meters),
// every device running the same app profile. UE heartbeats are staggered a
// few seconds apart so collections arrive in a deterministic order.
func PairScenario(opts Options, profile hbmsg.AppProfile, numUEs int, distance float64, capacity int) (*Simulation, error) {
	if numUEs < 0 {
		return nil, fmt.Errorf("core: negative UE count %d", numUEs)
	}
	sim, err := New(opts)
	if err != nil {
		return nil, err
	}
	if _, err := sim.AddRelay(RelaySpec{
		ID:       "relay",
		Profile:  profile,
		Mobility: geo.Static{},
		Capacity: capacity,
	}); err != nil {
		return nil, err
	}
	for i := 0; i < numUEs; i++ {
		spec := UESpec{
			ID:      hbmsg.DeviceID(fmt.Sprintf("ue-%02d", i+1)),
			Profile: profile,
			// UEs on a circle of the given radius around the relay.
			Mobility: geo.Orbit{Radius: distance, Phase: float64(i)},
			// Staggered offsets ≥ 20 s: collections arrive in a fixed
			// order, and a horizon of k×period + 10 s covers exactly k
			// heartbeats per UE including the final RRC release.
			StartOffset: 20*time.Second + time.Duration(i)*5*time.Second,
		}
		if _, err := sim.AddUE(spec); err != nil {
			return nil, err
		}
	}
	return sim, nil
}

// OriginalScenario builds the same topology as PairScenario but with D2D
// disabled everywhere: every device transmits its own heartbeats over
// cellular. This is the paper's "original system" baseline.
func OriginalScenario(opts Options, profile hbmsg.AppProfile, numUEs int, distance float64) (*Simulation, error) {
	opts.DisableD2D = true
	return PairScenario(opts, profile, numUEs, distance, 8)
}

// CrowdScenario scatters relays and UEs uniformly over a square area of the
// given side (meters) — the "high-density crowd" deployment where signaling
// storms arise (Section II-D). Devices are static; the per-device start
// offsets are randomized within one period so heartbeats are unsynchronized.
func CrowdScenario(opts Options, profile hbmsg.AppProfile, numRelays, numUEs int, side float64, capacity int) (*Simulation, error) {
	if numRelays < 0 || numUEs < 0 {
		return nil, fmt.Errorf("core: negative device counts %d/%d", numRelays, numUEs)
	}
	if side <= 0 {
		return nil, fmt.Errorf("core: area side must be positive, got %v", side)
	}
	sim, err := New(opts)
	if err != nil {
		return nil, err
	}
	area := geo.Square(side)
	rng := sim.sched.Rand()
	for i := 0; i < numRelays; i++ {
		if _, err := sim.AddRelay(RelaySpec{
			ID:          hbmsg.DeviceID(fmt.Sprintf("relay-%02d", i+1)),
			Profile:     profile,
			Mobility:    geo.Static{P: area.RandomPoint(rng)},
			Capacity:    capacity,
			StartOffset: time.Duration(rng.Int63n(int64(profile.Period))),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < numUEs; i++ {
		if _, err := sim.AddUE(UESpec{
			ID:          hbmsg.DeviceID(fmt.Sprintf("ue-%03d", i+1)),
			Profile:     profile,
			Mobility:    geo.Static{P: area.RandomPoint(rng)},
			StartOffset: time.Duration(rng.Int63n(int64(profile.Period))),
		}); err != nil {
			return nil, err
		}
	}
	return sim, nil
}
