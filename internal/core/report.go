package core

import (
	"time"

	"d2dhb/internal/cellular"
	"d2dhb/internal/hbmsg"
)

// NewReport assembles a Report from externally produced device reports —
// the parallel city kernel builds per-device results on tile workers and
// merges them here in stable population order, so the result (and its
// canonical digest) has exactly the same shape as a Simulation.Run
// report. Device order in devices is preserved.
func NewReport(duration time.Duration, devices []*DeviceReport, totalL3, deliveries, late int, channel cellular.ChannelReport) *Report {
	rep := &Report{
		Duration:        duration,
		Devices:         devices,
		TotalL3Messages: totalL3,
		Deliveries:      deliveries,
		LateDeliveries:  late,
		Channel:         channel,
		byID:            make(map[hbmsg.DeviceID]*DeviceReport, len(devices)),
	}
	for _, d := range devices {
		rep.byID[d.ID] = d
	}
	return rep
}
