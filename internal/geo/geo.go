// Package geo provides 2-D geometry and device mobility models for the
// simulation. Positions are in meters on a flat plane; the base station and
// all devices share one coordinate system.
package geo

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Point is a position on the simulation plane, in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance to q in meters.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point {
	return Point{X: p.X + dx, Y: p.Y + dy}
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y)
}

// Rect is an axis-aligned rectangle describing the simulation area.
type Rect struct {
	Min, Max Point
}

// Square returns a side×side area anchored at the origin.
func Square(side float64) Rect {
	return Rect{Max: Point{X: side, Y: side}}
}

// Width returns the horizontal extent of the rectangle.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of the rectangle.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p constrained to lie inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// RandomPoint draws a uniformly distributed point inside r.
func (r Rect) RandomPoint(rng *rand.Rand) Point {
	return Point{
		X: r.Min.X + rng.Float64()*r.Width(),
		Y: r.Min.Y + rng.Float64()*r.Height(),
	}
}

// Mobility yields a device's position as a function of virtual time.
// Implementations must be deterministic: the same instant always maps to the
// same position so that repeated queries agree.
type Mobility interface {
	// Pos returns the position at virtual instant at.
	Pos(at time.Duration) Point
}

// SpeedLimited is implemented by mobility models whose displacement rate is
// bounded: |Pos(t2) - Pos(t1)| <= MaxSpeed * (t2 - t1) for all t1 <= t2.
// Spatial indexes use the bound to refresh cached positions lazily; a model
// that cannot honour it must not implement the interface (it is then treated
// as unbounded and tracked exactly).
type SpeedLimited interface {
	Mobility
	// MaxSpeed returns the displacement bound in m/s. Zero means the model
	// never moves.
	MaxSpeed() float64
}

// Static is a Mobility that never moves.
type Static struct {
	P Point
}

var _ SpeedLimited = Static{}

// Pos implements Mobility.
func (s Static) Pos(time.Duration) Point { return s.P }

// MaxSpeed implements SpeedLimited: a static device never moves.
func (s Static) MaxSpeed() float64 { return 0 }

// waypointLeg is one precomputed leg of a random-waypoint walk.
type waypointLeg struct {
	start    time.Duration
	from, to Point
	duration time.Duration
}

// RandomWaypoint is the classic random-waypoint mobility model: the device
// repeatedly picks a uniform destination in the area and walks there at a
// speed drawn uniformly from [MinSpeed, MaxSpeed], pausing Pause at each
// waypoint. Legs are precomputed lazily and cached so Pos is deterministic.
type RandomWaypoint struct {
	area     Rect
	minSpeed float64 // m/s
	maxSpeed float64 // m/s
	pause    time.Duration
	rng      *rand.Rand
	legs     []waypointLeg
}

var _ Mobility = (*RandomWaypoint)(nil)

// NewRandomWaypoint builds a random-waypoint walker starting at start.
// Speeds are in m/s; both must be positive and minSpeed <= maxSpeed.
func NewRandomWaypoint(area Rect, start Point, minSpeed, maxSpeed float64, pause time.Duration, seed int64) (*RandomWaypoint, error) {
	if minSpeed <= 0 || maxSpeed < minSpeed {
		return nil, fmt.Errorf("geo: invalid speed range [%v, %v]", minSpeed, maxSpeed)
	}
	if !area.Contains(start) {
		return nil, fmt.Errorf("geo: start %v outside area", start)
	}
	w := &RandomWaypoint{
		area:     area,
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		pause:    pause,
		rng:      rand.New(rand.NewSource(seed)),
	}
	w.legs = append(w.legs, waypointLeg{from: start, to: start, duration: pause})
	return w, nil
}

// Pos implements Mobility. Queries may arrive in any order; the walk is
// extended as far as needed and cached.
func (w *RandomWaypoint) Pos(at time.Duration) Point {
	if at < 0 {
		at = 0
	}
	w.extend(at)
	// Binary search would be possible, but walks are short and queries are
	// mostly monotonic; scan from the end.
	for i := len(w.legs) - 1; i >= 0; i-- {
		leg := w.legs[i]
		if at >= leg.start {
			return interpolate(leg, at)
		}
	}
	return w.legs[0].from
}

// extend appends legs until the cached walk covers instant at.
func (w *RandomWaypoint) extend(at time.Duration) {
	for {
		last := w.legs[len(w.legs)-1]
		end := last.start + last.duration
		if end > at {
			return
		}
		from := last.to
		to := w.area.RandomPoint(w.rng)
		speed := w.minSpeed + w.rng.Float64()*(w.maxSpeed-w.minSpeed)
		dist := from.Dist(to)
		travel := time.Duration(dist / speed * float64(time.Second))
		if travel <= 0 {
			travel = time.Millisecond
		}
		w.legs = append(w.legs,
			waypointLeg{start: end, from: from, to: to, duration: travel},
			waypointLeg{start: end + travel, from: to, to: to, duration: w.pause},
		)
	}
}

// MaxSpeed implements SpeedLimited: every leg's speed is drawn from
// [minSpeed, maxSpeed] and pauses do not move, so maxSpeed bounds the walk.
func (w *RandomWaypoint) MaxSpeed() float64 { return w.maxSpeed }

func interpolate(leg waypointLeg, at time.Duration) Point {
	if leg.duration <= 0 || leg.from == leg.to {
		return leg.to
	}
	frac := float64(at-leg.start) / float64(leg.duration)
	if frac > 1 {
		frac = 1
	}
	return Point{
		X: leg.from.X + (leg.to.X-leg.from.X)*frac,
		Y: leg.from.Y + (leg.to.Y-leg.from.Y)*frac,
	}
}

// Orbit is a Mobility that circles a center at a fixed radius and angular
// speed. It is useful for controlled distance sweeps: a device orbiting a
// static relay keeps an exact, analytically known separation.
type Orbit struct {
	Center Point
	Radius float64 // m
	Omega  float64 // rad/s, may be zero for a fixed offset
	Phase  float64 // rad at t=0
}

var _ SpeedLimited = Orbit{}

// Pos implements Mobility.
func (o Orbit) Pos(at time.Duration) Point {
	theta := o.Phase + o.Omega*at.Seconds()
	return Point{
		X: o.Center.X + o.Radius*math.Cos(theta),
		Y: o.Center.Y + o.Radius*math.Sin(theta),
	}
}

// MaxSpeed implements SpeedLimited: tangential speed is |Omega| * Radius.
func (o Orbit) MaxSpeed() float64 { return math.Abs(o.Omega) * o.Radius }

// Line is a Mobility that departs From at Start and moves toward To at
// Speed m/s, stopping on arrival. Before Start the device sits at From.
type Line struct {
	From, To Point
	Speed    float64 // m/s
	Start    time.Duration
}

var _ SpeedLimited = Line{}

// Pos implements Mobility.
func (l Line) Pos(at time.Duration) Point {
	if at <= l.Start || l.Speed <= 0 {
		return l.From
	}
	dist := l.From.Dist(l.To)
	if dist == 0 {
		return l.To
	}
	travelled := l.Speed * (at - l.Start).Seconds()
	if travelled >= dist {
		return l.To
	}
	frac := travelled / dist
	return Point{
		X: l.From.X + (l.To.X-l.From.X)*frac,
		Y: l.From.Y + (l.To.Y-l.From.Y)*frac,
	}
}

// MaxSpeed implements SpeedLimited: the device is stationary before Start
// and after arrival, and moves at Speed in between.
func (l Line) MaxSpeed() float64 {
	if l.Speed < 0 {
		return 0
	}
	return l.Speed
}
