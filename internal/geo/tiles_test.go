package geo

import (
	"math/rand"
	"testing"
)

func TestTileGridValidation(t *testing.T) {
	if _, err := NewTileGrid(Square(100), 0); err == nil {
		t.Fatal("zero tiles accepted")
	}
	if _, err := NewTileGrid(Rect{}, 4); err == nil {
		t.Fatal("empty area accepted")
	}
}

func TestTileGridFactorization(t *testing.T) {
	cases := []struct{ tiles, rows, cols int }{
		{1, 1, 1},
		{4, 2, 2},
		{16, 4, 4},
		{6, 2, 3},
		{7, 1, 7},
		{12, 3, 4},
	}
	for _, c := range cases {
		g, err := NewTileGrid(Square(100), c.tiles)
		if err != nil {
			t.Fatal(err)
		}
		if g.Tiles() != c.tiles || g.Rows() != c.rows || g.Cols() != c.cols {
			t.Fatalf("tiles=%d: got %dx%d (%d tiles), want %dx%d",
				c.tiles, g.Rows(), g.Cols(), g.Tiles(), c.rows, c.cols)
		}
	}
}

func TestTileGridTileOfCoversArea(t *testing.T) {
	area := Square(1000)
	for _, tiles := range []int{1, 4, 16, 6} {
		g, err := NewTileGrid(area, tiles)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 2000; i++ {
			p := area.RandomPoint(rng)
			idx := g.TileOf(p)
			if idx < 0 || idx >= tiles {
				t.Fatalf("tiles=%d: TileOf(%+v) = %d out of range", tiles, p, idx)
			}
			b, err := g.Bounds(idx)
			if err != nil {
				t.Fatal(err)
			}
			if !b.Contains(p) {
				t.Fatalf("tiles=%d: point %+v mapped to tile %d with bounds %+v", tiles, p, idx, b)
			}
		}
	}
}

func TestTileGridBordersAndOutsidePoints(t *testing.T) {
	g, err := NewTileGrid(Square(100), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Interior border points belong to the higher tile on each axis.
	if got := g.TileOf(Point{X: 50, Y: 0}); got != 1 {
		t.Fatalf("border point (50,0) in tile %d, want 1", got)
	}
	if got := g.TileOf(Point{X: 0, Y: 50}); got != 2 {
		t.Fatalf("border point (0,50) in tile %d, want 2", got)
	}
	// Corners and outside points clamp to valid tiles.
	if got := g.TileOf(Point{X: 100, Y: 100}); got != 3 {
		t.Fatalf("max corner in tile %d, want 3", got)
	}
	if got := g.TileOf(Point{X: -5, Y: -5}); got != 0 {
		t.Fatalf("outside min point in tile %d, want 0", got)
	}
	if got := g.TileOf(Point{X: 1e9, Y: 1e9}); got != 3 {
		t.Fatalf("far outside point in tile %d, want 3", got)
	}
}

func TestTileGridBounds(t *testing.T) {
	g, err := NewTileGrid(Square(90), 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Bounds(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := g.Bounds(9); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	b, err := g.Bounds(4) // center tile of the 3x3
	if err != nil {
		t.Fatal(err)
	}
	want := Rect{Min: Point{X: 30, Y: 30}, Max: Point{X: 60, Y: 60}}
	if b != want {
		t.Fatalf("center tile bounds %+v, want %+v", b, want)
	}
	last, err := g.Bounds(8)
	if err != nil {
		t.Fatal(err)
	}
	if last.Max != (Point{X: 90, Y: 90}) {
		t.Fatalf("last tile max %+v, want area max", last.Max)
	}
}
