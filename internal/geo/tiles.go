package geo

import (
	"fmt"
	"math"
)

// TileGrid partitions a rectangular area into rows × cols equal tiles,
// numbered row-major from the minimum corner. It is the spatial side of
// the parallel city kernel: each tile maps to one scheduler, and TileOf
// re-bins a device after it moves.
//
// The tile count is factored into the most square rows × cols layout
// (perfect squares become n×n; primes degrade to 1×n strips), so the
// usual 1/4/16 tile configurations split both axes evenly.
type TileGrid struct {
	area  Rect
	rows  int
	cols  int
	tileW float64
	tileH float64
}

// NewTileGrid partitions area into tiles regions. The area must have
// positive extent on both axes.
func NewTileGrid(area Rect, tiles int) (*TileGrid, error) {
	if tiles < 1 {
		return nil, fmt.Errorf("geo: tile count %d < 1", tiles)
	}
	w := area.Max.X - area.Min.X
	h := area.Max.Y - area.Min.Y
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("geo: tile grid over empty area %+v", area)
	}
	cols := int(math.Sqrt(float64(tiles)))
	for tiles%cols != 0 {
		cols--
	}
	rows := tiles / cols
	// Favor more columns than rows on non-square factorizations so wide
	// areas split along their long axis; for squares it makes no difference.
	if cols < rows {
		cols, rows = rows, cols
	}
	return &TileGrid{
		area:  area,
		rows:  rows,
		cols:  cols,
		tileW: w / float64(cols),
		tileH: h / float64(rows),
	}, nil
}

// Tiles reports the number of tiles.
func (g *TileGrid) Tiles() int { return g.rows * g.cols }

// Rows reports the row count of the factored layout.
func (g *TileGrid) Rows() int { return g.rows }

// Cols reports the column count of the factored layout.
func (g *TileGrid) Cols() int { return g.cols }

// TileOf maps a point to its tile index. Points outside the area are
// clamped onto it first, and points exactly on an interior border belong
// to the higher-index tile, so every point maps to exactly one valid
// index.
func (g *TileGrid) TileOf(p Point) int {
	p = g.area.Clamp(p)
	cx := int((p.X - g.area.Min.X) / g.tileW)
	if cx >= g.cols {
		cx = g.cols - 1
	}
	cy := int((p.Y - g.area.Min.Y) / g.tileH)
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Bounds reports tile i's rectangle. The union of all tiles is exactly
// the area; adjacent tiles share their border line.
func (g *TileGrid) Bounds(i int) (Rect, error) {
	if i < 0 || i >= g.Tiles() {
		return Rect{}, fmt.Errorf("geo: tile index %d out of %d", i, g.Tiles())
	}
	cy, cx := i/g.cols, i%g.cols
	min := Point{
		X: g.area.Min.X + float64(cx)*g.tileW,
		Y: g.area.Min.Y + float64(cy)*g.tileH,
	}
	max := Point{X: min.X + g.tileW, Y: min.Y + g.tileH}
	// Snap the outer edge to the area bounds so float rounding cannot
	// leave a sliver uncovered on the last row/column.
	if cx == g.cols-1 {
		max.X = g.area.Max.X
	}
	if cy == g.rows-1 {
		max.Y = g.area.Max.Y
	}
	return Rect{Min: min, Max: max}, nil
}
