package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{name: "same point", p: Point{1, 2}, q: Point{1, 2}, want: 0},
		{name: "unit x", p: Point{0, 0}, q: Point{1, 0}, want: 1},
		{name: "3-4-5", p: Point{0, 0}, q: Point{3, 4}, want: 5},
		{name: "negative coords", p: Point{-3, -4}, q: Point{0, 0}, want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("Dist = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRectContainsAndClamp(t *testing.T) {
	r := Square(10)
	if !r.Contains(Point{5, 5}) {
		t.Fatal("center not contained")
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 10}) {
		t.Fatal("boundary not contained")
	}
	if r.Contains(Point{11, 5}) {
		t.Fatal("outside point contained")
	}
	got := r.Clamp(Point{-3, 20})
	if got != (Point{0, 10}) {
		t.Fatalf("Clamp = %v, want (0, 10)", got)
	}
}

func TestRandomPointInsideArea(t *testing.T) {
	r := Rect{Min: Point{2, 3}, Max: Point{8, 9}}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		p := r.RandomPoint(rng)
		if !r.Contains(p) {
			t.Fatalf("random point %v outside %v", p, r)
		}
	}
}

func TestStaticNeverMoves(t *testing.T) {
	s := Static{P: Point{4, 7}}
	for _, at := range []time.Duration{0, time.Second, time.Hour} {
		if got := s.Pos(at); got != s.P {
			t.Fatalf("Pos(%v) = %v, want %v", at, got, s.P)
		}
	}
}

func TestRandomWaypointValidation(t *testing.T) {
	area := Square(100)
	if _, err := NewRandomWaypoint(area, Point{50, 50}, 0, 1, 0, 1); err == nil {
		t.Fatal("zero min speed accepted")
	}
	if _, err := NewRandomWaypoint(area, Point{50, 50}, 2, 1, 0, 1); err == nil {
		t.Fatal("inverted speed range accepted")
	}
	if _, err := NewRandomWaypoint(area, Point{500, 50}, 1, 2, 0, 1); err == nil {
		t.Fatal("start outside area accepted")
	}
}

func TestRandomWaypointStaysInsideArea(t *testing.T) {
	area := Square(50)
	w, err := NewRandomWaypoint(area, Point{25, 25}, 0.5, 2.0, 5*time.Second, 42)
	if err != nil {
		t.Fatalf("NewRandomWaypoint: %v", err)
	}
	for at := time.Duration(0); at < time.Hour; at += 7 * time.Second {
		p := w.Pos(at)
		if !area.Contains(p) {
			t.Fatalf("Pos(%v) = %v escaped area", at, p)
		}
	}
}

func TestRandomWaypointDeterministicAndIdempotent(t *testing.T) {
	area := Square(50)
	mk := func() *RandomWaypoint {
		w, err := NewRandomWaypoint(area, Point{10, 10}, 1, 3, 2*time.Second, 7)
		if err != nil {
			t.Fatalf("NewRandomWaypoint: %v", err)
		}
		return w
	}
	a, b := mk(), mk()
	instants := []time.Duration{0, 3 * time.Second, time.Minute, 10 * time.Minute}
	for _, at := range instants {
		pa, pb := a.Pos(at), b.Pos(at)
		if pa != pb {
			t.Fatalf("same seed diverged at %v: %v vs %v", at, pa, pb)
		}
	}
	// Re-querying earlier instants (after the walk extended) must agree.
	early := a.Pos(3 * time.Second)
	_ = a.Pos(time.Hour)
	if again := a.Pos(3 * time.Second); again != early {
		t.Fatalf("re-query changed position: %v vs %v", again, early)
	}
}

func TestRandomWaypointSpeedBounded(t *testing.T) {
	area := Square(100)
	w, err := NewRandomWaypoint(area, Point{50, 50}, 1, 2, 0, 99)
	if err != nil {
		t.Fatalf("NewRandomWaypoint: %v", err)
	}
	const step = 100 * time.Millisecond
	prev := w.Pos(0)
	for at := step; at < 5*time.Minute; at += step {
		cur := w.Pos(at)
		speed := prev.Dist(cur) / step.Seconds()
		// Allow slack for a direction change inside one step.
		if speed > 2*2+0.01 {
			t.Fatalf("instantaneous speed %v m/s exceeds bound at %v", speed, at)
		}
		prev = cur
	}
}

func TestOrbitKeepsRadius(t *testing.T) {
	o := Orbit{Center: Point{10, 10}, Radius: 5, Omega: 0.3}
	for at := time.Duration(0); at < time.Minute; at += time.Second {
		d := o.Pos(at).Dist(o.Center)
		if math.Abs(d-5) > 1e-9 {
			t.Fatalf("radius drifted to %v at %v", d, at)
		}
	}
}

func TestOrbitZeroOmegaIsFixed(t *testing.T) {
	o := Orbit{Center: Point{0, 0}, Radius: 3, Omega: 0}
	if o.Pos(0) != o.Pos(time.Hour) {
		t.Fatal("zero-omega orbit moved")
	}
	if got := o.Pos(0); math.Abs(got.X-3) > 1e-12 || math.Abs(got.Y) > 1e-12 {
		t.Fatalf("Pos(0) = %v, want (3, 0)", got)
	}
}

func TestLineMovement(t *testing.T) {
	l := Line{From: Point{0, 0}, To: Point{10, 0}, Speed: 1, Start: 5 * time.Second}
	tests := []struct {
		at   time.Duration
		want Point
	}{
		{0, Point{0, 0}},
		{5 * time.Second, Point{0, 0}},
		{10 * time.Second, Point{5, 0}},
		{15 * time.Second, Point{10, 0}},
		{time.Hour, Point{10, 0}},
	}
	for _, tt := range tests {
		got := l.Pos(tt.at)
		if got.Dist(tt.want) > 1e-9 {
			t.Fatalf("Pos(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestLineZeroSpeedStays(t *testing.T) {
	l := Line{From: Point{1, 1}, To: Point{9, 9}, Speed: 0}
	if got := l.Pos(time.Hour); got != (Point{1, 1}) {
		t.Fatalf("Pos = %v, want (1,1)", got)
	}
}

// TestQuickDistMetric property-checks the metric axioms of Dist: symmetry,
// non-negativity, identity, and the triangle inequality.
func TestQuickDistMetric(t *testing.T) {
	clampf := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e6)
	}
	prop := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clampf(ax), clampf(ay)}
		b := Point{clampf(bx), clampf(by)}
		c := Point{clampf(cx), clampf(cy)}
		ab, ba := a.Dist(b), b.Dist(a)
		if ab != ba || ab < 0 {
			return false
		}
		if a.Dist(a) != 0 {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickClampInside property-checks that Clamp always yields a point
// inside the rectangle and is the identity for contained points.
func TestQuickClampInside(t *testing.T) {
	prop := func(x, y float64, side uint8) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		r := Square(float64(side) + 1)
		p := Point{x, y}
		cl := r.Clamp(p)
		if !r.Contains(cl) {
			return false
		}
		if r.Contains(p) && cl != p {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
