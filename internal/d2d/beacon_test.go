package d2d

import (
	"fmt"
	"testing"

	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
)

func TestBeaconIndexValidation(t *testing.T) {
	if _, err := NewBeaconIndex(0); err == nil {
		t.Fatal("zero cell size accepted")
	}
	if _, err := NewBeaconIndex(-1); err == nil {
		t.Fatal("negative cell size accepted")
	}
}

func TestBeaconIndexNeighborhoodCoversRange(t *testing.T) {
	const cell = 35.0
	x, err := NewBeaconIndex(cell)
	if err != nil {
		t.Fatal(err)
	}
	var beacons []Beacon
	for i := 0; i < 100; i++ {
		beacons = append(beacons, Beacon{
			ID:    hbmsg.DeviceID(fmt.Sprintf("r%03d", i)),
			Order: i,
			Pos:   geo.Point{X: float64(i%10) * 12, Y: float64(i/10) * 12},
		})
	}
	x.Rebuild(beacons)

	q := geo.Point{X: 50, Y: 50}
	got := x.Neighborhood(q, nil)
	found := make(map[int]bool, len(got))
	for _, b := range got {
		found[b.Order] = true
	}
	for _, b := range beacons {
		if q.Dist(b.Pos) <= cell && !found[b.Order] {
			t.Fatalf("beacon %d at %+v within %v of %+v missing from neighborhood", b.Order, b.Pos, cell, q)
		}
	}
}

func TestBeaconIndexNeighborhoodSortedByOrder(t *testing.T) {
	x, err := NewBeaconIndex(35)
	if err != nil {
		t.Fatal(err)
	}
	// Insert out of order; all in one neighborhood.
	x.Rebuild([]Beacon{
		{Order: 5, Pos: geo.Point{X: 10, Y: 10}},
		{Order: 1, Pos: geo.Point{X: 20, Y: 10}},
		{Order: 3, Pos: geo.Point{X: 40, Y: 10}}, // adjacent cell
	})
	got := x.Neighborhood(geo.Point{X: 20, Y: 10}, nil)
	if len(got) != 3 {
		t.Fatalf("got %d beacons, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Order >= got[i].Order {
			t.Fatalf("neighborhood not sorted by Order: %+v", got)
		}
	}
}

func TestBeaconIndexRebuildReplaces(t *testing.T) {
	x, err := NewBeaconIndex(35)
	if err != nil {
		t.Fatal(err)
	}
	x.Rebuild([]Beacon{{Order: 0, Pos: geo.Point{X: 5, Y: 5}}})
	if got := x.Neighborhood(geo.Point{X: 5, Y: 5}, nil); len(got) != 1 {
		t.Fatalf("got %d beacons after first rebuild, want 1", len(got))
	}
	x.Rebuild([]Beacon{{Order: 1, Pos: geo.Point{X: 500, Y: 500}}})
	if got := x.Neighborhood(geo.Point{X: 5, Y: 5}, nil); len(got) != 0 {
		t.Fatalf("stale beacons survived rebuild: %+v", got)
	}
	if got := x.Neighborhood(geo.Point{X: 500, Y: 500}, nil); len(got) != 1 || got[0].Order != 1 {
		t.Fatalf("new beacon missing after rebuild: %+v", got)
	}
	// Reuse buffer path.
	buf := make([]Beacon, 0, 8)
	if got := x.Neighborhood(geo.Point{X: 500, Y: 500}, buf[:0]); len(got) != 1 {
		t.Fatalf("buffer reuse path broken: %+v", got)
	}
}
