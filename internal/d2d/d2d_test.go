package d2d

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"d2dhb/internal/energy"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/radio"
	"d2dhb/internal/simtime"
)

type fixture struct {
	sched  *simtime.Scheduler
	medium *Medium
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	s := simtime.NewScheduler(1)
	m, err := NewMedium(s, Config{Profile: radio.WiFiDirectProfile(), Model: energy.DefaultModel()})
	if err != nil {
		t.Fatalf("NewMedium: %v", err)
	}
	return &fixture{sched: s, medium: m}
}

func (f *fixture) join(t *testing.T, id hbmsg.DeviceID, role Role, at geo.Point) (*Node, *energy.Ledger) {
	t.Helper()
	led := energy.NewLedger()
	n, err := f.medium.Join(id, role, geo.Static{P: at}, led)
	if err != nil {
		t.Fatalf("Join(%s): %v", id, err)
	}
	return n, led
}

func stdHB(seq uint64) hbmsg.Heartbeat {
	return hbmsg.Heartbeat{App: "t", Src: "ue-1", Seq: seq, Expiry: time.Minute, Size: 54}
}

func TestNewMediumValidation(t *testing.T) {
	s := simtime.NewScheduler(1)
	good := Config{Profile: radio.WiFiDirectProfile(), Model: energy.DefaultModel()}
	if _, err := NewMedium(nil, good); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	bad := good
	bad.Profile.BitrateMbps = 0
	if _, err := NewMedium(s, bad); err == nil {
		t.Fatal("invalid profile accepted")
	}
	bad = good
	bad.Model.CellularTxBase = 0
	if _, err := NewMedium(s, bad); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestJoinValidation(t *testing.T) {
	f := newFixture(t)
	led := energy.NewLedger()
	mob := geo.Static{}
	if _, err := f.medium.Join("", RoleUE, mob, led); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := f.medium.Join("a", RoleUE, nil, led); err == nil {
		t.Fatal("nil mobility accepted")
	}
	if _, err := f.medium.Join("a", RoleUE, mob, nil); err == nil {
		t.Fatal("nil ledger accepted")
	}
	if _, err := f.medium.Join("a", Role(9), mob, led); err == nil {
		t.Fatal("invalid role accepted")
	}
	if _, err := f.medium.Join("a", RoleUE, mob, led); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if _, err := f.medium.Join("a", RoleUE, mob, led); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate id err = %v, want ErrDuplicateID", err)
	}
}

func TestScanFindsAcceptingPeersInRange(t *testing.T) {
	f := newFixture(t)
	ue, _ := f.join(t, "ue-1", RoleUE, geo.Point{X: 0, Y: 0})
	near, _ := f.join(t, "relay-near", RoleRelay, geo.Point{X: 2, Y: 0})
	far, _ := f.join(t, "relay-far", RoleRelay, geo.Point{X: 10, Y: 0})
	_, _ = f.join(t, "relay-out", RoleRelay, geo.Point{X: 500, Y: 0})
	off, _ := f.join(t, "relay-off", RoleRelay, geo.Point{X: 3, Y: 0})

	near.SetAccepting(true)
	near.Advertise(5, MaxGroupOwnerIntent)
	far.SetAccepting(true)
	far.Advertise(5, MaxGroupOwnerIntent)
	off.SetAccepting(false) // in range but not accepting

	peers := ue.Scan()
	if len(peers) != 2 {
		t.Fatalf("found %d peers, want 2: %+v", len(peers), peers)
	}
	// Nearest-first ranking (Section III-C: match the shortest distance).
	if peers[0].ID != "relay-near" || peers[1].ID != "relay-far" {
		t.Fatalf("ranking wrong: %v then %v", peers[0].ID, peers[1].ID)
	}
	if peers[0].EstDistance >= peers[1].EstDistance {
		t.Fatalf("distance estimates not ordered: %v vs %v", peers[0].EstDistance, peers[1].EstDistance)
	}
	if peers[0].Intent != MaxGroupOwnerIntent || peers[0].FreeCapacity != 5 {
		t.Fatalf("advertised data wrong: %+v", peers[0])
	}
}

func TestScanChargesDiscoveryEnergy(t *testing.T) {
	f := newFixture(t)
	model := energy.DefaultModel()
	ue, ueLed := f.join(t, "ue-1", RoleUE, geo.Point{X: 0, Y: 0})
	relay, relayLed := f.join(t, "relay-1", RoleRelay, geo.Point{X: 1, Y: 0})
	relay.SetAccepting(true)

	ue.Scan()
	if got := ueLed.Phase(energy.PhaseDiscovery); got != model.UEDiscovery {
		t.Fatalf("UE discovery charge = %v, want %v", got, model.UEDiscovery)
	}
	// Beacon responses ride the idle baseline; the relay's discovery
	// phase is billed at group formation, not per bystander scan.
	if got := relayLed.Phase(energy.PhaseDiscovery); got != 0 {
		t.Fatalf("relay charged %v at scan, want 0", got)
	}
	if _, err := ue.Connect("relay-1"); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if got := relayLed.Phase(energy.PhaseDiscovery); got != model.RelayDiscovery {
		t.Fatalf("relay discovery charge after connect = %v, want %v", got, model.RelayDiscovery)
	}
	// The initiator pays a little more than the responder (Table III).
	if ueLed.Phase(energy.PhaseDiscovery) <= relayLed.Phase(energy.PhaseDiscovery) {
		t.Fatal("UE discovery not more expensive than relay's")
	}
	// A second scan by the UE does not re-bill the connected relay.
	before := relayLed.Phase(energy.PhaseDiscovery)
	ue.Scan()
	if got := relayLed.Phase(energy.PhaseDiscovery); got != before {
		t.Fatalf("rescan re-billed the relay: %v vs %v", got, before)
	}
}

func TestConnectEstablishesLinkAndChargesBoth(t *testing.T) {
	f := newFixture(t)
	model := energy.DefaultModel()
	ue, ueLed := f.join(t, "ue-1", RoleUE, geo.Point{X: 0, Y: 0})
	relay, relayLed := f.join(t, "relay-1", RoleRelay, geo.Point{X: 1, Y: 0})
	relay.SetAccepting(true)

	link, err := ue.Connect("relay-1")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if !link.Open() {
		t.Fatal("link not open")
	}
	if link.Initiator() != ue || link.Responder() != relay {
		t.Fatal("link endpoints wrong")
	}
	if got := ueLed.Phase(energy.PhaseConnection); got != model.UEConnection {
		t.Fatalf("UE connection charge = %v, want %v", got, model.UEConnection)
	}
	if got := relayLed.Phase(energy.PhaseConnection); got != model.RelayConnection {
		t.Fatalf("relay connection charge = %v, want %v", got, model.RelayConnection)
	}
	if len(ue.Links()) != 1 || len(relay.Links()) != 1 {
		t.Fatal("links not registered on both endpoints")
	}
}

func TestConnectIdempotent(t *testing.T) {
	f := newFixture(t)
	ue, ueLed := f.join(t, "ue-1", RoleUE, geo.Point{X: 0, Y: 0})
	relay, _ := f.join(t, "relay-1", RoleRelay, geo.Point{X: 1, Y: 0})
	relay.SetAccepting(true)

	l1, err := ue.Connect("relay-1")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	first := ueLed.Phase(energy.PhaseConnection)
	l2, err := ue.Connect("relay-1")
	if err != nil {
		t.Fatalf("second Connect: %v", err)
	}
	if l1 != l2 {
		t.Fatal("reconnect created a new link")
	}
	if got := ueLed.Phase(energy.PhaseConnection); got != first {
		t.Fatal("reconnect charged connection energy again")
	}
}

func TestConnectErrors(t *testing.T) {
	f := newFixture(t)
	ue, _ := f.join(t, "ue-1", RoleUE, geo.Point{X: 0, Y: 0})
	relay, _ := f.join(t, "relay-1", RoleRelay, geo.Point{X: 1, Y: 0})
	farRelay, _ := f.join(t, "relay-far", RoleRelay, geo.Point{X: 1000, Y: 0})
	farRelay.SetAccepting(true)

	if _, err := ue.Connect("ghost"); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
	if _, err := ue.Connect("relay-1"); !errors.Is(err, ErrNotAccepting) {
		t.Fatalf("err = %v, want ErrNotAccepting", err)
	}
	relay.SetAccepting(true)
	if _, err := ue.Connect("relay-far"); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestSendDeliversAndCharges(t *testing.T) {
	f := newFixture(t)
	model := energy.DefaultModel()
	ue, ueLed := f.join(t, "ue-1", RoleUE, geo.Point{X: 0, Y: 0})
	relay, relayLed := f.join(t, "relay-1", RoleRelay, geo.Point{X: 1, Y: 0})
	relay.SetAccepting(true)

	var got []hbmsg.Heartbeat
	relay.OnReceive(func(hb hbmsg.Heartbeat, _ *Link) { got = append(got, hb) })

	link, err := ue.Connect("relay-1")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if err := link.Send(ue, stdHB(1)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("delivered = %v", got)
	}
	if got := ueLed.Phase(energy.PhaseD2DSend); got != model.D2DSendCharge(54, 1) {
		t.Fatalf("send charge = %v, want %v", got, model.D2DSendCharge(54, 1))
	}
	// First transfer over a link carries the group wake-up cost.
	if got := relayLed.Phase(energy.PhaseD2DRecv); got != model.D2DRecvCharge(54, 1, true) {
		t.Fatalf("recv charge = %v, want first-of-link %v", got, model.D2DRecvCharge(54, 1, true))
	}

	// Second transfer is cheaper (steady state).
	before := relayLed.Phase(energy.PhaseD2DRecv)
	if err := link.Send(ue, stdHB(2)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	marginal := float64(relayLed.Phase(energy.PhaseD2DRecv) - before)
	want := float64(model.D2DRecvCharge(54, 1, false))
	if diff := marginal - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("steady recv charge = %v, want %v", marginal, want)
	}
	if link.Transfers() != 2 {
		t.Fatalf("transfers = %d, want 2", link.Transfers())
	}
}

func TestSendRelayToUEFeedbackDirection(t *testing.T) {
	f := newFixture(t)
	ue, _ := f.join(t, "ue-1", RoleUE, geo.Point{X: 0, Y: 0})
	relay, _ := f.join(t, "relay-1", RoleRelay, geo.Point{X: 1, Y: 0})
	relay.SetAccepting(true)
	var ueGot int
	ue.OnReceive(func(hbmsg.Heartbeat, *Link) { ueGot++ })

	link, err := ue.Connect("relay-1")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if err := link.Send(relay, stdHB(9)); err != nil {
		t.Fatalf("relay→UE Send: %v", err)
	}
	if ueGot != 1 {
		t.Fatalf("UE received %d, want 1", ueGot)
	}
}

func TestSendOutOfRangeClosesLink(t *testing.T) {
	f := newFixture(t)
	s := f.sched
	ue, _ := f.join(t, "ue-1", RoleUE, geo.Point{X: 0, Y: 0})
	// The relay walks straight out of range.
	led := energy.NewLedger()
	relay, err := f.medium.Join("relay-1", RoleRelay,
		geo.Line{From: geo.Point{X: 1, Y: 0}, To: geo.Point{X: 500, Y: 0}, Speed: 10}, led)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	relay.SetAccepting(true)

	link, err := ue.Connect("relay-1")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	// Advance time far enough for the relay to leave range.
	if err := s.RunUntil(time.Minute); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if err := link.Send(ue, stdHB(1)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if link.Open() {
		t.Fatal("link still open after range break")
	}
	if err := link.Send(ue, stdHB(2)); !errors.Is(err, ErrLinkClosed) {
		t.Fatalf("err = %v, want ErrLinkClosed", err)
	}
}

func TestSendFromNonEndpoint(t *testing.T) {
	f := newFixture(t)
	ue, _ := f.join(t, "ue-1", RoleUE, geo.Point{X: 0, Y: 0})
	relay, _ := f.join(t, "relay-1", RoleRelay, geo.Point{X: 1, Y: 0})
	stranger, _ := f.join(t, "ue-2", RoleUE, geo.Point{X: 2, Y: 0})
	relay.SetAccepting(true)
	link, err := ue.Connect("relay-1")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if err := link.Send(stranger, stdHB(1)); err == nil {
		t.Fatal("non-endpoint send accepted")
	}
}

func TestSendLossInEdgeZone(t *testing.T) {
	// At ~90 % of max range transfers fail with noticeable probability but
	// the link survives the failure.
	f := newFixture(t)
	prof := f.medium.Profile()
	d := prof.MaxRange() * 0.9
	ue, _ := f.join(t, "ue-1", RoleUE, geo.Point{X: 0, Y: 0})
	relay, _ := f.join(t, "relay-1", RoleRelay, geo.Point{X: d, Y: 0})
	relay.SetAccepting(true)
	delivered := 0
	relay.OnReceive(func(hbmsg.Heartbeat, *Link) { delivered++ })

	link, err := ue.Connect("relay-1")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	failures := 0
	const tries = 500
	for i := 0; i < tries; i++ {
		if err := link.Send(ue, stdHB(uint64(i))); err != nil {
			if !errors.Is(err, ErrTransferFailed) {
				t.Fatalf("unexpected error: %v", err)
			}
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("no losses in edge zone")
	}
	if delivered+failures != tries {
		t.Fatalf("delivered %d + failures %d != %d", delivered, failures, tries)
	}
	if !link.Open() {
		t.Fatal("loss closed the link")
	}
}

func TestLinkClose(t *testing.T) {
	f := newFixture(t)
	ue, _ := f.join(t, "ue-1", RoleUE, geo.Point{X: 0, Y: 0})
	relay, _ := f.join(t, "relay-1", RoleRelay, geo.Point{X: 1, Y: 0})
	relay.SetAccepting(true)
	link, err := ue.Connect("relay-1")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	link.Close()
	link.Close() // idempotent
	if len(ue.Links()) != 0 || len(relay.Links()) != 0 {
		t.Fatal("links not removed on close")
	}
}

func TestLinkHelpers(t *testing.T) {
	f := newFixture(t)
	ue, _ := f.join(t, "ue-1", RoleUE, geo.Point{X: 0, Y: 0})
	relay, _ := f.join(t, "relay-1", RoleRelay, geo.Point{X: 3, Y: 4})
	relay.SetAccepting(true)
	link, err := ue.Connect("relay-1")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if got := link.Distance(); got != 5 {
		t.Fatalf("Distance = %v, want 5", got)
	}
	if link.Peer(ue) != relay || link.Peer(relay) != ue {
		t.Fatal("Peer wrong")
	}
	if link.TransferTime(54) <= 0 {
		t.Fatal("TransferTime not positive")
	}
	if link.OpenedAt() != 0 {
		t.Fatalf("OpenedAt = %v, want 0", link.OpenedAt())
	}
}

func TestIntentForLoad(t *testing.T) {
	tests := []struct {
		load, capacity, want int
	}{
		{0, 10, 15},
		{5, 10, 7},
		{10, 10, 0},
		{15, 10, 0},
		{-1, 10, 15},
		{0, 0, 0},
	}
	for _, tt := range tests {
		if got := IntentForLoad(tt.load, tt.capacity); got != tt.want {
			t.Errorf("IntentForLoad(%d, %d) = %d, want %d", tt.load, tt.capacity, got, tt.want)
		}
	}
}

func TestRoleString(t *testing.T) {
	if RoleUE.String() != "ue" || RoleRelay.String() != "relay" {
		t.Fatal("role strings wrong")
	}
	if Role(5).String() != "role(5)" {
		t.Fatal("unknown role string wrong")
	}
}

func TestAdvertiseClamps(t *testing.T) {
	f := newFixture(t)
	relay, _ := f.join(t, "relay-1", RoleRelay, geo.Point{})
	relay.Advertise(-3, 99)
	relay.SetAccepting(true)
	ue, _ := f.join(t, "ue-1", RoleUE, geo.Point{X: 1})
	peers := ue.Scan()
	if len(peers) != 1 {
		t.Fatalf("peers = %d, want 1", len(peers))
	}
	if peers[0].FreeCapacity != 0 || peers[0].Intent != MaxGroupOwnerIntent {
		t.Fatalf("clamping failed: %+v", peers[0])
	}
}

// TestQuickIntentMonotonic property-checks that advertised intent never
// increases with load and is always within [0, 15].
func TestQuickIntentMonotonic(t *testing.T) {
	prop := func(a, b uint8, capacity uint8) bool {
		c := int(capacity%20) + 1
		l1, l2 := int(a)%25, int(b)%25
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		i1, i2 := IntentForLoad(l1, c), IntentForLoad(l2, c)
		if i1 < 0 || i1 > MaxGroupOwnerIntent || i2 < 0 || i2 > MaxGroupOwnerIntent {
			return false
		}
		return i1 >= i2
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(15))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScanRankingSorted property-checks that Scan output is always
// sorted by estimated distance regardless of join order.
func TestQuickScanRankingSorted(t *testing.T) {
	prop := func(coords []uint16) bool {
		s := simtime.NewScheduler(4)
		m, err := NewMedium(s, Config{Profile: radio.WiFiDirectProfile(), Model: energy.DefaultModel()})
		if err != nil {
			return false
		}
		ue, err := m.Join("ue", RoleUE, geo.Static{}, energy.NewLedger())
		if err != nil {
			return false
		}
		for i, c := range coords {
			if i >= 12 {
				break
			}
			x := float64(c%30) + 0.5
			id := hbmsg.DeviceID(rune('a' + i))
			r, err := m.Join(id, RoleRelay, geo.Static{P: geo.Point{X: x}}, energy.NewLedger())
			if err != nil {
				return false
			}
			r.SetAccepting(true)
		}
		peers := ue.Scan()
		for i := 1; i < len(peers); i++ {
			if peers[i].EstDistance < peers[i-1].EstDistance {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(16))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScanOnlyInRangeAccepting property-checks that Scan returns
// exactly the accepting peers within radio range, regardless of layout.
func TestQuickScanOnlyInRangeAccepting(t *testing.T) {
	prop := func(xs []uint16, acceptMask []bool) bool {
		s := simtime.NewScheduler(6)
		m, err := NewMedium(s, Config{Profile: radio.WiFiDirectProfile(), Model: energy.DefaultModel()})
		if err != nil {
			return false
		}
		ue, err := m.Join("ue", RoleUE, geo.Static{}, energy.NewLedger())
		if err != nil {
			return false
		}
		want := make(map[hbmsg.DeviceID]bool)
		maxRange := m.Profile().MaxRange()
		for i, x := range xs {
			if i >= 10 {
				break
			}
			d := float64(x % 60) // 0..59 m, straddling the ~37 m range
			id := hbmsg.DeviceID(rune('a' + i))
			peer, err := m.Join(id, RoleRelay, geo.Static{P: geo.Point{X: d}}, energy.NewLedger())
			if err != nil {
				return false
			}
			accepting := i < len(acceptMask) && acceptMask[i]
			peer.SetAccepting(accepting)
			if accepting && d <= maxRange {
				want[id] = true
			}
		}
		got := ue.Scan()
		if len(got) != len(want) {
			return false
		}
		for _, p := range got {
			if !want[p.ID] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
