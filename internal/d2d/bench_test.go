package d2d

import (
	"fmt"
	"math"
	"testing"
	"time"

	"d2dhb/internal/energy"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/radio"
	"d2dhb/internal/simtime"
)

// benchMedium builds a medium with n accepting relays scattered at a fixed
// density of one device per 100 m² (a dense urban crowd) plus one scanning
// UE near the middle, so the in-range population stays constant while the
// total population grows — exactly the regime where a linear Scan turns
// O(n) and the grid index stays O(neighborhood).
func benchMedium(b *testing.B, n int) *Node {
	b.Helper()
	s := simtime.NewScheduler(1)
	m, err := NewMedium(s, Config{Profile: radio.WiFiDirectProfile(), Model: energy.DefaultModel()})
	if err != nil {
		b.Fatal(err)
	}
	side := math.Sqrt(float64(n) * 100)
	area := geo.Square(side)
	rng := s.Rand()
	for i := 0; i < n; i++ {
		node, err := m.Join(hbmsg.DeviceID(fmt.Sprintf("relay-%05d", i)), RoleRelay,
			geo.Static{P: area.RandomPoint(rng)}, energy.NewLedger())
		if err != nil {
			b.Fatal(err)
		}
		node.SetAccepting(true)
		node.Advertise(8, MaxGroupOwnerIntent)
	}
	ue, err := m.Join("scanner", RoleUE,
		geo.Static{P: geo.Point{X: side / 2, Y: side / 2}}, energy.NewLedger())
	if err != nil {
		b.Fatal(err)
	}
	return ue
}

func benchmarkScan(b *testing.B, n int) {
	ue := benchMedium(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	var found int
	for i := 0; i < b.N; i++ {
		found = len(ue.Scan())
	}
	b.ReportMetric(float64(found), "peers-found")
}

// BenchmarkScan measures one D2D discovery against growing populations at
// constant density: the EXPERIMENTS.md "Scan µs at 1k/10k devices" rows.
func BenchmarkScan100(b *testing.B) { benchmarkScan(b, 100) }
func BenchmarkScan1k(b *testing.B)  { benchmarkScan(b, 1_000) }
func BenchmarkScan10k(b *testing.B) { benchmarkScan(b, 10_000) }
func BenchmarkScanMoving(b *testing.B) {
	// Every 25th device is a pedestrian walker: the grid must lazily
	// re-bin movers without losing the neighborhood win.
	s := simtime.NewScheduler(1)
	m, err := NewMedium(s, Config{Profile: radio.WiFiDirectProfile(), Model: energy.DefaultModel()})
	if err != nil {
		b.Fatal(err)
	}
	const n = 10_000
	side := math.Sqrt(float64(n) * 100)
	area := geo.Square(side)
	rng := s.Rand()
	for i := 0; i < n; i++ {
		var mob geo.Mobility = geo.Static{P: area.RandomPoint(rng)}
		if i%25 == 0 {
			w, err := geo.NewRandomWaypoint(area, area.RandomPoint(rng), 0.5, 1.5, 0, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			mob = w
		}
		node, err := m.Join(hbmsg.DeviceID(fmt.Sprintf("relay-%05d", i)), RoleRelay, mob, energy.NewLedger())
		if err != nil {
			b.Fatal(err)
		}
		node.SetAccepting(true)
		node.Advertise(8, MaxGroupOwnerIntent)
	}
	ue, err := m.Join("scanner", RoleUE,
		geo.Static{P: geo.Point{X: side / 2, Y: side / 2}}, energy.NewLedger())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Advance the clock so movers actually move between scans.
		if err := s.RunUntil(s.Now() + time.Second); err != nil {
			b.Fatal(err)
		}
		ue.Scan()
	}
}
