// Package d2d implements the device-to-device substrate the prototype built
// on Android Wi-Fi Direct: peer discovery with signal-strength ranking,
// group-owner negotiation via the groupOwnerIntent value, link establishment
// and message transfer with distance-dependent failures. Energy for each
// phase is charged to the participating devices' ledgers using the
// paper-calibrated model (Table III).
package d2d

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"d2dhb/internal/energy"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/radio"
	"d2dhb/internal/simtime"
)

// Errors returned by discovery, connection and transfer operations.
var (
	ErrUnknownPeer    = errors.New("d2d: unknown peer")
	ErrOutOfRange     = errors.New("d2d: peer out of range")
	ErrNotAccepting   = errors.New("d2d: peer not accepting connections")
	ErrLinkClosed     = errors.New("d2d: link closed")
	ErrTransferFailed = errors.New("d2d: transfer failed")
	ErrDuplicateID    = errors.New("d2d: duplicate device id")
)

// Role distinguishes the two framework roles a device can take
// (Section III-A). Discovery and connection energy differ by role
// (Table III).
type Role int

// Device roles.
const (
	RoleUE Role = iota + 1
	RoleRelay
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleUE:
		return "ue"
	case RoleRelay:
		return "relay"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// MaxGroupOwnerIntent is Wi-Fi Direct's maximum groupOwnerIntent value; the
// prototype sets it for relays initially and 0 for UEs (Section IV-C).
const MaxGroupOwnerIntent = 15

// IntentForLoad returns the advertised group-owner intent for a relay at
// the given collected-message load: the prototype "reduce[s]
// groupOwnerIntend proportionally until 0 while relay collects heartbeat
// messages".
func IntentForLoad(load, capacity int) int {
	if capacity <= 0 || load >= capacity {
		return 0
	}
	if load < 0 {
		load = 0
	}
	return MaxGroupOwnerIntent * (capacity - load) / capacity
}

// PeerInfo is one discovery result: what a scanning UE learns about a
// nearby relay.
type PeerInfo struct {
	ID hbmsg.DeviceID
	// RSSI is the measured signal strength in dBm, including shadowing.
	RSSI float64
	// EstDistance is the distance estimate inverted from RSSI; the UE
	// ranks candidates by it ("match the available relay, with the
	// shortest distance").
	EstDistance float64
	// Intent is the peer's advertised group-owner intent.
	Intent int
	// FreeCapacity is how many more heartbeats the peer advertises it can
	// collect this period.
	FreeCapacity int
}

// Config parameterizes a Medium.
type Config struct {
	Profile radio.Profile
	Model   energy.Model
}

// Medium is the shared radio environment: every Node joined to the same
// Medium can discover and connect to the others, subject to range.
type Medium struct {
	sched   *simtime.Scheduler
	profile radio.Profile
	model   energy.Model
	nodes   map[hbmsg.DeviceID]*Node
	order   []hbmsg.DeviceID // deterministic iteration order
}

// NewMedium builds a Medium on the given scheduler.
func NewMedium(sched *simtime.Scheduler, cfg Config) (*Medium, error) {
	if sched == nil {
		return nil, errors.New("d2d: nil scheduler")
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, fmt.Errorf("d2d: profile: %w", err)
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, fmt.Errorf("d2d: model: %w", err)
	}
	return &Medium{
		sched:   sched,
		profile: cfg.Profile,
		model:   cfg.Model,
		nodes:   make(map[hbmsg.DeviceID]*Node),
	}, nil
}

// Profile returns the radio profile of the medium.
func (m *Medium) Profile() radio.Profile { return m.profile }

// Join registers a device on the medium. The ledger receives the device's
// D2D energy charges.
func (m *Medium) Join(id hbmsg.DeviceID, role Role, mob geo.Mobility, ledger *energy.Ledger) (*Node, error) {
	if id == "" {
		return nil, errors.New("d2d: empty device id")
	}
	if mob == nil {
		return nil, errors.New("d2d: nil mobility")
	}
	if ledger == nil {
		return nil, errors.New("d2d: nil ledger")
	}
	if role != RoleUE && role != RoleRelay {
		return nil, fmt.Errorf("d2d: invalid role %d", int(role))
	}
	if _, ok := m.nodes[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	n := &Node{
		id:     id,
		role:   role,
		medium: m,
		mob:    mob,
		ledger: ledger,
		links:  make(map[hbmsg.DeviceID]*Link),
	}
	if role == RoleRelay {
		n.intent = MaxGroupOwnerIntent
	}
	m.nodes[id] = n
	m.order = append(m.order, id)
	return n, nil
}

// Node is one device's D2D adapter.
type Node struct {
	id     hbmsg.DeviceID
	role   Role
	medium *Medium
	mob    geo.Mobility
	ledger *energy.Ledger

	accepting    bool
	freeCapacity int
	intent       int

	links   map[hbmsg.DeviceID]*Link
	receive func(hb hbmsg.Heartbeat, link *Link)
	ack     func(refs []AckRef, link *Link)
}

// ID returns the device id.
func (n *Node) ID() hbmsg.DeviceID { return n.id }

// Role returns the device role.
func (n *Node) Role() Role { return n.role }

// Pos returns the device's current position.
func (n *Node) Pos() geo.Point { return n.mob.Pos(n.medium.sched.Now()) }

// SetAccepting controls whether the node answers discovery and accepts
// connections (relays only, in practice).
func (n *Node) SetAccepting(accepting bool) { n.accepting = accepting }

// Advertise updates the relay's advertised free capacity and group-owner
// intent.
func (n *Node) Advertise(freeCapacity, intent int) {
	if freeCapacity < 0 {
		freeCapacity = 0
	}
	if intent < 0 {
		intent = 0
	}
	if intent > MaxGroupOwnerIntent {
		intent = MaxGroupOwnerIntent
	}
	n.freeCapacity = freeCapacity
	n.intent = intent
}

// Advertised returns the node's currently advertised free capacity and
// group-owner intent. Group members observe the owner's beacons, so a
// connected UE can read this without a rescan.
func (n *Node) Advertised() (freeCapacity, intent int) {
	return n.freeCapacity, n.intent
}

// OnReceive registers the handler invoked for every heartbeat delivered to
// this node over any link.
func (n *Node) OnReceive(h func(hb hbmsg.Heartbeat, link *Link)) { n.receive = h }

// Links returns the node's open links in deterministic (peer id) order.
func (n *Node) Links() []*Link {
	out := make([]*Link, 0, len(n.links))
	ids := make([]string, 0, len(n.links))
	for id := range n.links {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		out = append(out, n.links[hbmsg.DeviceID(id)])
	}
	return out
}

// Scan performs a D2D discovery: it returns every accepting peer in radio
// range, ranked nearest-first by RSSI-estimated distance. The scanning
// device is charged its discovery energy. Responding peers are not charged
// here: beacon responses ride the idle baseline, and the relay's measured
// discovery energy (Table III, slightly below the initiator's) is
// attributed at group formation in Connect — otherwise every bystander scan
// in a crowd would bill each relay a full discovery phase.
func (n *Node) Scan() []PeerInfo {
	m := n.medium
	n.chargeDiscovery(n.role)

	var found []PeerInfo
	for _, id := range m.order {
		peer := m.nodes[id]
		if peer == n || !peer.accepting {
			continue
		}
		d := n.Pos().Dist(peer.Pos())
		if !m.profile.InRange(d) {
			continue
		}
		rssi := m.profile.MeasureRSSI(d, m.sched.Rand())
		found = append(found, PeerInfo{
			ID:           peer.id,
			RSSI:         rssi,
			EstDistance:  m.profile.EstimateDistance(rssi),
			Intent:       peer.intent,
			FreeCapacity: peer.freeCapacity,
		})
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].EstDistance != found[j].EstDistance {
			return found[i].EstDistance < found[j].EstDistance
		}
		return found[i].ID < found[j].ID
	})
	return found
}

func (n *Node) chargeDiscovery(role Role) {
	if role == RoleRelay {
		n.ledger.Add(energy.PhaseDiscovery, n.medium.model.RelayDiscovery)
		return
	}
	n.ledger.Add(energy.PhaseDiscovery, n.medium.model.UEDiscovery)
}

// Connect establishes a D2D link with peer. The initiator is the group
// client (UE, intent 0); the responder must advertise a higher group-owner
// intent and be accepting. Both sides are charged their connection energy
// (Table III).
func (n *Node) Connect(peer hbmsg.DeviceID) (*Link, error) {
	m := n.medium
	p, ok := m.nodes[peer]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPeer, peer)
	}
	if !p.accepting {
		return nil, fmt.Errorf("%w: %s", ErrNotAccepting, peer)
	}
	d := n.Pos().Dist(p.Pos())
	if !m.profile.InRange(d) {
		return nil, fmt.Errorf("%w: %s at %.1fm", ErrOutOfRange, peer, d)
	}
	if l, ok := n.links[peer]; ok && l.open {
		return l, nil // already connected
	}

	n.chargeConnection(n.role)
	// The responder's discovery phase (listen + probe responses for this
	// pairing) is billed here, at group formation.
	p.chargeDiscovery(p.role)
	p.chargeConnection(p.role)

	l := &Link{
		medium:    m,
		initiator: n,
		responder: p,
		open:      true,
		openedAt:  m.sched.Now(),
	}
	n.links[peer] = l
	p.links[n.id] = l
	return l, nil
}

func (n *Node) chargeConnection(role Role) {
	if role == RoleRelay {
		n.ledger.Add(energy.PhaseConnection, n.medium.model.RelayConnection)
		return
	}
	n.ledger.Add(energy.PhaseConnection, n.medium.model.UEConnection)
}

// Link is an established D2D connection between an initiating UE and a
// responding relay.
type Link struct {
	medium    *Medium
	initiator *Node // UE side
	responder *Node // relay side
	open      bool
	openedAt  time.Duration
	transfers int
}

// Initiator returns the UE-side node.
func (l *Link) Initiator() *Node { return l.initiator }

// Responder returns the relay-side node.
func (l *Link) Responder() *Node { return l.responder }

// Open reports whether the link is usable.
func (l *Link) Open() bool { return l.open }

// OpenedAt returns the instant the link was established.
func (l *Link) OpenedAt() time.Duration { return l.openedAt }

// Transfers returns how many successful transfers crossed the link.
func (l *Link) Transfers() int { return l.transfers }

// Distance returns the current physical separation of the endpoints.
func (l *Link) Distance() float64 {
	return l.initiator.Pos().Dist(l.responder.Pos())
}

// Peer returns the opposite endpoint of n on this link.
func (l *Link) Peer(n *Node) *Node {
	if l.initiator == n {
		return l.responder
	}
	return l.initiator
}

// Send transfers a heartbeat from `from` to the opposite endpoint. The
// sender is charged D2D send energy and the receiver recv energy; the first
// transfer over a link carries the group wake-up cost (Table IV). Transfers
// fail with ErrOutOfRange when mobility carried the peers apart (the link
// closes) or ErrTransferFailed on a distance-dependent loss (the link stays
// up; the caller may retry or fall back to cellular).
func (l *Link) Send(from *Node, hb hbmsg.Heartbeat) error {
	if !l.open {
		return ErrLinkClosed
	}
	if from != l.initiator && from != l.responder {
		return fmt.Errorf("d2d: node %s not an endpoint", from.id)
	}
	m := l.medium
	d := l.Distance()
	if !m.profile.InRange(d) {
		l.Close()
		return fmt.Errorf("%w: %.1fm", ErrOutOfRange, d)
	}
	to := l.Peer(from)

	// The radio spends energy on the attempt whether or not it succeeds.
	from.ledger.Add(energy.PhaseD2DSend, m.model.D2DSendCharge(hb.Size, d))
	if !m.profile.TransferOK(d, m.sched.Rand()) {
		return fmt.Errorf("%w: at %.1fm", ErrTransferFailed, d)
	}
	to.ledger.Add(energy.PhaseD2DRecv, m.model.D2DRecvCharge(hb.Size, d, l.transfers == 0))
	l.transfers++
	if to.receive != nil {
		to.receive(hb, l)
	}
	return nil
}

// TransferTime returns the link-layer latency for a message of the given
// size.
func (l *Link) TransferTime(sizeBytes int) time.Duration {
	return l.medium.profile.TransferTime(sizeBytes)
}

// Close tears the link down on both endpoints.
func (l *Link) Close() {
	if !l.open {
		return
	}
	l.open = false
	delete(l.initiator.links, l.responder.id)
	delete(l.responder.links, l.initiator.id)
}
