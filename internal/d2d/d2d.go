// Package d2d implements the device-to-device substrate the prototype built
// on Android Wi-Fi Direct: peer discovery with signal-strength ranking,
// group-owner negotiation via the groupOwnerIntent value, link establishment
// and message transfer with distance-dependent failures. Energy for each
// phase is charged to the participating devices' ledgers using the
// paper-calibrated model (Table III).
package d2d

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"time"

	"d2dhb/internal/energy"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/radio"
	"d2dhb/internal/simtime"
)

// Errors returned by discovery, connection and transfer operations.
var (
	ErrUnknownPeer    = errors.New("d2d: unknown peer")
	ErrOutOfRange     = errors.New("d2d: peer out of range")
	ErrNotAccepting   = errors.New("d2d: peer not accepting connections")
	ErrLinkClosed     = errors.New("d2d: link closed")
	ErrTransferFailed = errors.New("d2d: transfer failed")
	ErrDuplicateID    = errors.New("d2d: duplicate device id")
)

// Role distinguishes the two framework roles a device can take
// (Section III-A). Discovery and connection energy differ by role
// (Table III).
type Role int

// Device roles.
const (
	RoleUE Role = iota + 1
	RoleRelay
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleUE:
		return "ue"
	case RoleRelay:
		return "relay"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// MaxGroupOwnerIntent is Wi-Fi Direct's maximum groupOwnerIntent value; the
// prototype sets it for relays initially and 0 for UEs (Section IV-C).
const MaxGroupOwnerIntent = 15

// IntentForLoad returns the advertised group-owner intent for a relay at
// the given collected-message load: the prototype "reduce[s]
// groupOwnerIntend proportionally until 0 while relay collects heartbeat
// messages".
func IntentForLoad(load, capacity int) int {
	if capacity <= 0 || load >= capacity {
		return 0
	}
	if load < 0 {
		load = 0
	}
	return MaxGroupOwnerIntent * (capacity - load) / capacity
}

// PeerInfo is one discovery result: what a scanning UE learns about a
// nearby relay.
type PeerInfo struct {
	ID hbmsg.DeviceID
	// RSSI is the measured signal strength in dBm, including shadowing.
	RSSI float64
	// EstDistance is the distance estimate inverted from RSSI; the UE
	// ranks candidates by it ("match the available relay, with the
	// shortest distance").
	EstDistance float64
	// Intent is the peer's advertised group-owner intent.
	Intent int
	// FreeCapacity is how many more heartbeats the peer advertises it can
	// collect this period.
	FreeCapacity int
}

// Config parameterizes a Medium.
type Config struct {
	Profile radio.Profile
	Model   energy.Model
}

// Medium is the shared radio environment: every Node joined to the same
// Medium can discover and connect to the others, subject to range.
//
// Discovery is served by a uniform-grid spatial index with cell size equal to
// the radio range, so a Scan visits only the 5x5 (3x3 when nothing moves)
// cell neighbourhood around the scanner instead of the whole population.
// Nodes are classified at Join: static mobilities are binned once,
// geo.SpeedLimited movers are re-binned lazily from a FIFO whose refresh
// interval bounds their binned-position staleness to one cell, and mobilities
// with no speed bound stay on a linear fallback list. Grid candidates are
// re-sorted into join order before any RSSI draw, so seeded runs are
// bit-identical to the plain linear scan.
type Medium struct {
	sched   *simtime.Scheduler
	profile radio.Profile
	model   energy.Model
	nodes   map[hbmsg.DeviceID]*Node

	cellSize   float64 // grid cell edge = radio range
	grid       map[cellKey][]*Node
	unbounded  []*Node       // mobilities without a speed bound: always scanned
	moverQueue []*Node       // speed-limited movers, FIFO by binnedAt
	moverHead  int           // queue start (popped entries are re-appended)
	maxSpeed   float64       // fastest MaxSpeed seen among movers
	rebinEvery time.Duration // staleness bound: cellSize / maxSpeed
	scratch    []*Node       // reusable Scan candidate buffer
}

// cellKey addresses one grid cell: floor(position / cellSize) per axis.
type cellKey struct {
	cx, cy int32
}

// NewMedium builds a Medium on the given scheduler.
func NewMedium(sched *simtime.Scheduler, cfg Config) (*Medium, error) {
	if sched == nil {
		return nil, errors.New("d2d: nil scheduler")
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, fmt.Errorf("d2d: profile: %w", err)
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, fmt.Errorf("d2d: model: %w", err)
	}
	return &Medium{
		sched:    sched,
		profile:  cfg.Profile,
		model:    cfg.Model,
		nodes:    make(map[hbmsg.DeviceID]*Node),
		cellSize: cfg.Profile.MaxRange(),
		grid:     make(map[cellKey][]*Node),
	}, nil
}

// Profile returns the radio profile of the medium.
func (m *Medium) Profile() radio.Profile { return m.profile }

// Join registers a device on the medium. The ledger receives the device's
// D2D energy charges.
func (m *Medium) Join(id hbmsg.DeviceID, role Role, mob geo.Mobility, ledger *energy.Ledger) (*Node, error) {
	if id == "" {
		return nil, errors.New("d2d: empty device id")
	}
	if mob == nil {
		return nil, errors.New("d2d: nil mobility")
	}
	if ledger == nil {
		return nil, errors.New("d2d: nil ledger")
	}
	if role != RoleUE && role != RoleRelay {
		return nil, fmt.Errorf("d2d: invalid role %d", int(role))
	}
	if _, ok := m.nodes[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	n := &Node{
		id:       id,
		role:     role,
		medium:   m,
		mob:      mob,
		ledger:   ledger,
		links:    make(map[hbmsg.DeviceID]*Link),
		orderIdx: len(m.nodes),
	}
	if role == RoleRelay {
		n.intent = MaxGroupOwnerIntent
	}
	m.nodes[id] = n
	m.index(n)
	return n, nil
}

// index classifies a freshly joined node for the discovery grid. Mobility
// models that advertise a speed bound are binned (and re-binned lazily when
// the bound is positive); anything else lands on the linear fallback list.
func (m *Medium) index(n *Node) {
	sl, ok := n.mob.(geo.SpeedLimited)
	if !ok || m.cellSize <= 0 {
		m.unbounded = append(m.unbounded, n)
		return
	}
	now := m.sched.Now()
	m.addToCell(n, m.cellOf(n.mob.Pos(now)))
	if v := sl.MaxSpeed(); v > 0 {
		if v > m.maxSpeed {
			m.maxSpeed = v
			m.rebinEvery = time.Duration(m.cellSize / v * float64(time.Second))
			if m.rebinEvery <= 0 {
				m.rebinEvery = 1 // pathological speed: re-bin every event
			}
		}
		n.binnedAt = now
		m.moverQueue = append(m.moverQueue, n)
	}
}

// cellOf maps a position to its grid cell.
func (m *Medium) cellOf(p geo.Point) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / m.cellSize)),
		cy: int32(math.Floor(p.Y / m.cellSize)),
	}
}

// addToCell appends n to the bucket of cell key.
func (m *Medium) addToCell(n *Node, key cellKey) {
	bucket := m.grid[key]
	n.cell = key
	n.cellSlot = len(bucket)
	m.grid[key] = append(bucket, n)
}

// removeFromCell swap-deletes n from its bucket. Bucket order is not
// meaningful — Scan re-sorts candidates into join order.
func (m *Medium) removeFromCell(n *Node) {
	bucket := m.grid[n.cell]
	last := len(bucket) - 1
	moved := bucket[last]
	bucket[n.cellSlot] = moved
	moved.cellSlot = n.cellSlot
	bucket[last] = nil
	if last == 0 {
		delete(m.grid, n.cell)
		return
	}
	m.grid[n.cell] = bucket[:last]
}

// refreshGrid re-bins movers whose binned position may have drifted by more
// than one cell. The FIFO is ordered by binnedAt (re-binned nodes go to the
// back with a fresh stamp, so the order stays monotonic) and the refresh
// interval is cellSize over the fastest mover's bound: any peer still binned
// is within one cell of its true position, which the 5x5 neighbourhood query
// absorbs.
func (m *Medium) refreshGrid() {
	if m.moverHead >= len(m.moverQueue) {
		return
	}
	now := m.sched.Now()
	for m.moverHead < len(m.moverQueue) {
		n := m.moverQueue[m.moverHead]
		if now-n.binnedAt < m.rebinEvery {
			break
		}
		m.moverHead++
		n.binnedAt = now
		if key := m.cellOf(n.mob.Pos(now)); key != n.cell {
			m.removeFromCell(n)
			m.addToCell(n, key)
		}
		m.moverQueue = append(m.moverQueue, n)
	}
	// Compact the consumed queue prefix once it dominates the slice.
	if m.moverHead > 64 && m.moverHead*2 >= len(m.moverQueue) {
		kept := copy(m.moverQueue, m.moverQueue[m.moverHead:])
		clear(m.moverQueue[kept:])
		m.moverQueue = m.moverQueue[:kept]
		m.moverHead = 0
	}
}

// Node is one device's D2D adapter.
type Node struct {
	id     hbmsg.DeviceID
	role   Role
	medium *Medium
	mob    geo.Mobility
	ledger *energy.Ledger

	accepting    bool
	freeCapacity int
	intent       int

	// Discovery-index bookkeeping, owned by the Medium.
	orderIdx int           // join order; candidate sort key for RNG stability
	cell     cellKey       // current grid cell (binned nodes only)
	cellSlot int           // position within the cell bucket
	binnedAt time.Duration // when the cell was last computed (movers only)

	links   map[hbmsg.DeviceID]*Link
	receive func(hb hbmsg.Heartbeat, link *Link)
	ack     func(refs []AckRef, link *Link)
}

// ID returns the device id.
func (n *Node) ID() hbmsg.DeviceID { return n.id }

// Role returns the device role.
func (n *Node) Role() Role { return n.role }

// Pos returns the device's current position.
func (n *Node) Pos() geo.Point { return n.mob.Pos(n.medium.sched.Now()) }

// SetAccepting controls whether the node answers discovery and accepts
// connections (relays only, in practice).
func (n *Node) SetAccepting(accepting bool) { n.accepting = accepting }

// Advertise updates the relay's advertised free capacity and group-owner
// intent.
func (n *Node) Advertise(freeCapacity, intent int) {
	if freeCapacity < 0 {
		freeCapacity = 0
	}
	if intent < 0 {
		intent = 0
	}
	if intent > MaxGroupOwnerIntent {
		intent = MaxGroupOwnerIntent
	}
	n.freeCapacity = freeCapacity
	n.intent = intent
}

// Advertised returns the node's currently advertised free capacity and
// group-owner intent. Group members observe the owner's beacons, so a
// connected UE can read this without a rescan.
func (n *Node) Advertised() (freeCapacity, intent int) {
	return n.freeCapacity, n.intent
}

// OnReceive registers the handler invoked for every heartbeat delivered to
// this node over any link.
func (n *Node) OnReceive(h func(hb hbmsg.Heartbeat, link *Link)) { n.receive = h }

// Links returns the node's open links in deterministic (peer id) order.
func (n *Node) Links() []*Link {
	out := make([]*Link, 0, len(n.links))
	ids := make([]hbmsg.DeviceID, 0, len(n.links))
	for id := range n.links {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		out = append(out, n.links[id])
	}
	return out
}

// Scan performs a D2D discovery: it returns every accepting peer in radio
// range, ranked nearest-first by RSSI-estimated distance. The scanning
// device is charged its discovery energy. Responding peers are not charged
// here: beacon responses ride the idle baseline, and the relay's measured
// discovery energy (Table III, slightly below the initiator's) is
// attributed at group formation in Connect — otherwise every bystander scan
// in a crowd would bill each relay a full discovery phase.
func (n *Node) Scan() []PeerInfo {
	m := n.medium
	n.chargeDiscovery(n.role)
	m.refreshGrid()

	// Collect candidates from the scanner's cell neighbourhood plus the
	// unbounded fallback list. A binned mover can be up to one cell from its
	// binned position and an in-range peer up to one cell (= one range) from
	// the scanner, so radius 2 covers every possible in-range peer; with no
	// movers binned positions are exact and radius 1 suffices.
	pos := n.Pos()
	cands := m.scratch[:0]
	center := m.cellOf(pos)
	r := int32(1)
	if len(m.moverQueue)-m.moverHead > 0 {
		r = 2
	}
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			cands = append(cands, m.grid[cellKey{cx: center.cx + dx, cy: center.cy + dy}]...)
		}
	}
	cands = append(cands, m.unbounded...)

	// The RNG draw sequence must match a full linear scan bit for bit:
	// restore join order before filtering, then draw RSSI only for peers
	// that pass the same range gate.
	slices.SortFunc(cands, func(a, b *Node) int { return a.orderIdx - b.orderIdx })

	var found []PeerInfo
	for _, peer := range cands {
		if peer == n || !peer.accepting {
			continue
		}
		d := pos.Dist(peer.Pos())
		if !m.profile.InRange(d) {
			continue
		}
		rssi := m.profile.MeasureRSSI(d, m.sched.Rand())
		found = append(found, PeerInfo{
			ID:           peer.id,
			RSSI:         rssi,
			EstDistance:  m.profile.EstimateDistance(rssi),
			Intent:       peer.intent,
			FreeCapacity: peer.freeCapacity,
		})
	}
	m.scratch = cands[:0]
	slices.SortFunc(found, func(a, b PeerInfo) int {
		switch {
		case a.EstDistance < b.EstDistance:
			return -1
		case a.EstDistance > b.EstDistance:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
	return found
}

func (n *Node) chargeDiscovery(role Role) {
	if role == RoleRelay {
		n.ledger.Add(energy.PhaseDiscovery, n.medium.model.RelayDiscovery)
		return
	}
	n.ledger.Add(energy.PhaseDiscovery, n.medium.model.UEDiscovery)
}

// Connect establishes a D2D link with peer. The initiator is the group
// client (UE, intent 0); the responder must advertise a higher group-owner
// intent and be accepting. Both sides are charged their connection energy
// (Table III).
func (n *Node) Connect(peer hbmsg.DeviceID) (*Link, error) {
	m := n.medium
	p, ok := m.nodes[peer]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPeer, peer)
	}
	if !p.accepting {
		return nil, fmt.Errorf("%w: %s", ErrNotAccepting, peer)
	}
	d := n.Pos().Dist(p.Pos())
	if !m.profile.InRange(d) {
		return nil, fmt.Errorf("%w: %s at %.1fm", ErrOutOfRange, peer, d)
	}
	if l, ok := n.links[peer]; ok && l.open {
		return l, nil // already connected
	}

	n.chargeConnection(n.role)
	// The responder's discovery phase (listen + probe responses for this
	// pairing) is billed here, at group formation.
	p.chargeDiscovery(p.role)
	p.chargeConnection(p.role)

	l := &Link{
		medium:    m,
		initiator: n,
		responder: p,
		open:      true,
		openedAt:  m.sched.Now(),
	}
	n.links[peer] = l
	p.links[n.id] = l
	return l, nil
}

func (n *Node) chargeConnection(role Role) {
	if role == RoleRelay {
		n.ledger.Add(energy.PhaseConnection, n.medium.model.RelayConnection)
		return
	}
	n.ledger.Add(energy.PhaseConnection, n.medium.model.UEConnection)
}

// Link is an established D2D connection between an initiating UE and a
// responding relay.
type Link struct {
	medium    *Medium
	initiator *Node // UE side
	responder *Node // relay side
	open      bool
	openedAt  time.Duration
	transfers int
}

// Initiator returns the UE-side node.
func (l *Link) Initiator() *Node { return l.initiator }

// Responder returns the relay-side node.
func (l *Link) Responder() *Node { return l.responder }

// Open reports whether the link is usable.
func (l *Link) Open() bool { return l.open }

// OpenedAt returns the instant the link was established.
func (l *Link) OpenedAt() time.Duration { return l.openedAt }

// Transfers returns how many successful transfers crossed the link.
func (l *Link) Transfers() int { return l.transfers }

// Distance returns the current physical separation of the endpoints.
func (l *Link) Distance() float64 {
	return l.initiator.Pos().Dist(l.responder.Pos())
}

// Peer returns the opposite endpoint of n on this link.
func (l *Link) Peer(n *Node) *Node {
	if l.initiator == n {
		return l.responder
	}
	return l.initiator
}

// Send transfers a heartbeat from `from` to the opposite endpoint. The
// sender is charged D2D send energy and the receiver recv energy; the first
// transfer over a link carries the group wake-up cost (Table IV). Transfers
// fail with ErrOutOfRange when mobility carried the peers apart (the link
// closes) or ErrTransferFailed on a distance-dependent loss (the link stays
// up; the caller may retry or fall back to cellular).
func (l *Link) Send(from *Node, hb hbmsg.Heartbeat) error {
	if !l.open {
		return ErrLinkClosed
	}
	if from != l.initiator && from != l.responder {
		return fmt.Errorf("d2d: node %s not an endpoint", from.id)
	}
	m := l.medium
	d := l.Distance()
	if !m.profile.InRange(d) {
		l.Close()
		return fmt.Errorf("%w: %.1fm", ErrOutOfRange, d)
	}
	to := l.Peer(from)

	// The radio spends energy on the attempt whether or not it succeeds.
	from.ledger.Add(energy.PhaseD2DSend, m.model.D2DSendCharge(hb.Size, d))
	if !m.profile.TransferOK(d, m.sched.Rand()) {
		return fmt.Errorf("%w: at %.1fm", ErrTransferFailed, d)
	}
	to.ledger.Add(energy.PhaseD2DRecv, m.model.D2DRecvCharge(hb.Size, d, l.transfers == 0))
	l.transfers++
	if to.receive != nil {
		to.receive(hb, l)
	}
	return nil
}

// TransferTime returns the link-layer latency for a message of the given
// size.
func (l *Link) TransferTime(sizeBytes int) time.Duration {
	return l.medium.profile.TransferTime(sizeBytes)
}

// Close tears the link down on both endpoints.
func (l *Link) Close() {
	if !l.open {
		return
	}
	l.open = false
	delete(l.initiator.links, l.responder.id)
	delete(l.responder.links, l.initiator.id)
}
