package d2d

import (
	"fmt"

	"d2dhb/internal/hbmsg"
)

// AckRef identifies one forwarded heartbeat in a feedback acknowledgement.
type AckRef struct {
	Src hbmsg.DeviceID
	Seq uint64
}

// OnAck registers the handler invoked when a feedback acknowledgement
// arrives at this node. The feedback mechanism is how UEs learn their
// forwarded heartbeats were transmitted successfully (Section III-A); a
// missing acknowledgement triggers the cellular fallback.
func (n *Node) OnAck(h func(refs []AckRef, link *Link)) { n.ack = h }

// SendAck transmits a feedback acknowledgement from `from` to the opposite
// endpoint. Acknowledgements are a few bytes and their radio energy is
// negligible next to heartbeat transfers, so no charge is recorded; they
// are still subject to range breaks and edge-zone loss like any transfer.
func (l *Link) SendAck(from *Node, refs []AckRef) error {
	if !l.open {
		return ErrLinkClosed
	}
	if from != l.initiator && from != l.responder {
		return fmt.Errorf("d2d: node %s not an endpoint", from.id)
	}
	if len(refs) == 0 {
		return nil
	}
	m := l.medium
	d := l.Distance()
	if !m.profile.InRange(d) {
		l.Close()
		return fmt.Errorf("%w: %.1fm", ErrOutOfRange, d)
	}
	if !m.profile.TransferOK(d, m.sched.Rand()) {
		return fmt.Errorf("%w: at %.1fm", ErrTransferFailed, d)
	}
	to := l.Peer(from)
	if to.ack != nil {
		to.ack(refs, l)
	}
	return nil
}
