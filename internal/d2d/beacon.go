package d2d

import (
	"fmt"
	"math"
	"sort"

	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
)

// Beacon is one relay's advertised state as frozen at a tile-window
// boundary of the parallel city kernel. Between boundaries every tile
// scans against the same immutable snapshot, which is what makes a scan's
// outcome independent of how devices are partitioned across tiles.
type Beacon struct {
	ID hbmsg.DeviceID
	// Order is the device's stable population index; candidate lists are
	// ordered by it so RSSI draws consume the scanner's RNG stream in a
	// partition-independent order.
	Order        int
	Pos          geo.Point
	Accepting    bool
	FreeCapacity int
	Intent       int
}

// BeaconIndex answers radius-bounded neighborhood queries over a beacon
// snapshot via a uniform grid, mirroring Medium's discovery grid. Cell
// size must be at least the radio range: snapshot positions are exact, so
// the 3×3 cell block around a query point covers every in-range beacon.
//
// The index is rebuilt at each window boundary; Rebuild reuses the cell
// map and its buckets, so steady-state rebuilds stay allocation-light.
type BeaconIndex struct {
	cellSize float64
	cells    map[cellKey][]Beacon
}

// NewBeaconIndex returns an empty index with the given cell size.
func NewBeaconIndex(cellSize float64) (*BeaconIndex, error) {
	if cellSize <= 0 || math.IsNaN(cellSize) {
		return nil, fmt.Errorf("d2d: beacon cell size %v must be positive", cellSize)
	}
	return &BeaconIndex{
		cellSize: cellSize,
		cells:    make(map[cellKey][]Beacon),
	}, nil
}

// Rebuild replaces the index contents with the given snapshot.
func (x *BeaconIndex) Rebuild(beacons []Beacon) {
	for k, bucket := range x.cells {
		x.cells[k] = bucket[:0]
	}
	for _, b := range beacons {
		k := x.cellOf(b.Pos)
		x.cells[k] = append(x.cells[k], b)
	}
}

func (x *BeaconIndex) cellOf(p geo.Point) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / x.cellSize)),
		cy: int32(math.Floor(p.Y / x.cellSize)),
	}
}

// Neighborhood appends every beacon in the 3×3 cell block around p to out
// and returns it sorted by Order. The result is a superset of the beacons
// within cellSize of p; callers apply the exact range check themselves.
func (x *BeaconIndex) Neighborhood(p geo.Point, out []Beacon) []Beacon {
	center := x.cellOf(p)
	for dy := int32(-1); dy <= 1; dy++ {
		for dx := int32(-1); dx <= 1; dx++ {
			out = append(out, x.cells[cellKey{cx: center.cx + dx, cy: center.cy + dy}]...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}
