package d2d

import (
	"fmt"
	"testing"
	"time"

	"d2dhb/internal/energy"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/radio"
	"d2dhb/internal/simtime"
)

// noBound hides a mobility's speed bound, forcing the unbounded fallback.
type noBound struct{ inner geo.Mobility }

func (u noBound) Pos(at time.Duration) geo.Point { return u.inner.Pos(at) }

// TestScanMatchesBruteForce is the grid-index equivalence property: at every
// instant, Scan must return exactly the accepting in-range peers a full
// linear sweep finds — across static devices, slow and fast movers that
// cross cells, devices far outside the scanner's neighbourhood, and custom
// mobilities with no speed bound.
func TestScanMatchesBruteForce(t *testing.T) {
	s := simtime.NewScheduler(3)
	m, err := NewMedium(s, Config{Profile: radio.WiFiDirectProfile(), Model: energy.DefaultModel()})
	if err != nil {
		t.Fatal(err)
	}
	area := geo.Square(400) // ~11x11 cells at Wi-Fi Direct range
	rng := s.Rand()
	const n = 300
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		p := area.RandomPoint(rng)
		var mob geo.Mobility
		switch i % 5 {
		case 0:
			mob = geo.Static{P: p}
		case 1: // pedestrian
			w, err := geo.NewRandomWaypoint(area, p, 0.5, 2.0, time.Second, int64(i))
			if err != nil {
				t.Fatal(err)
			}
			mob = w
		case 2: // vehicle: crosses a cell in under three steps
			w, err := geo.NewRandomWaypoint(area, p, 8, 15, 0, int64(i))
			if err != nil {
				t.Fatal(err)
			}
			mob = w
		case 3:
			mob = geo.Orbit{Center: p, Radius: 20, Omega: 0.05, Phase: float64(i)}
		default:
			mob = noBound{inner: geo.Line{From: p, To: area.Clamp(p.Add(50, 30)), Speed: 1.5}}
		}
		node, err := m.Join(hbmsg.DeviceID(fmt.Sprintf("n-%03d", i)), RoleRelay, mob, energy.NewLedger())
		if err != nil {
			t.Fatal(err)
		}
		// Leave a fifth of the population not accepting: they must never
		// appear in results even when in range.
		node.SetAccepting(i%5 != 4 || i%2 == 0)
		nodes = append(nodes, node)
	}

	bruteForce := func(scanner *Node) map[hbmsg.DeviceID]bool {
		want := make(map[hbmsg.DeviceID]bool)
		pos := scanner.Pos()
		for _, peer := range nodes {
			if peer == scanner || !peer.accepting {
				continue
			}
			if m.profile.InRange(pos.Dist(peer.Pos())) {
				want[peer.id] = true
			}
		}
		return want
	}

	for step := 0; step < 120; step++ {
		if err := s.RunUntil(s.Now() + 2*time.Second); err != nil {
			t.Fatal(err)
		}
		scanner := nodes[(step*37)%n] // rotate the vantage point
		want := bruteForce(scanner)
		got := scanner.Scan()
		if len(got) != len(want) {
			t.Fatalf("step %d (t=%v) scanner %s: grid found %d peers, brute force %d",
				step, s.Now(), scanner.id, len(got), len(want))
		}
		for _, pi := range got {
			if !want[pi.ID] {
				t.Fatalf("step %d: grid returned %s which is not an accepting in-range peer", step, pi.ID)
			}
		}
	}
}
