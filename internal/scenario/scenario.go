// Package scenario loads simulation topologies from JSON so experiments can
// be described declaratively and run via cmd/d2dsim -config. A scenario
// names the global options (seed, horizon, radio technique, scheduling
// policy) and the device population with positions, app profiles and
// mobility.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"d2dhb/internal/cellular"
	"d2dhb/internal/core"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/radio"
	"d2dhb/internal/sched"
	"d2dhb/internal/trace"
)

// Duration wraps time.Duration with JSON string parsing ("270s", "45m").
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("scenario: duration must be a string like \"270s\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("scenario: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// Std returns the wrapped time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Mobility describes how a device moves.
type Mobility struct {
	// Type is "static" (default), "line", "orbit" or "waypoint".
	Type string `json:"type"`
	// X, Y is the position (static), start (line) or center (orbit).
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// ToX, ToY is the line destination.
	ToX float64 `json:"toX"`
	ToY float64 `json:"toY"`
	// Speed is m/s for line; MinSpeed/MaxSpeed bound the waypoint walk.
	Speed    float64 `json:"speedMps"`
	MinSpeed float64 `json:"minSpeedMps"`
	MaxSpeed float64 `json:"maxSpeedMps"`
	// Radius and OmegaRadPerSec parameterize an orbit.
	Radius         float64 `json:"radiusM"`
	OmegaRadPerSec float64 `json:"omegaRadPerSec"`
	// Pause is the waypoint dwell time.
	Pause Duration `json:"pause"`
	// AreaSide bounds the waypoint walk (meters).
	AreaSide float64 `json:"areaSideM"`
	// Seed drives the waypoint walk (0 = derived from device order).
	Seed int64 `json:"seed"`
}

func (m Mobility) build(defaultSeed int64) (geo.Mobility, error) {
	switch strings.ToLower(m.Type) {
	case "", "static":
		return geo.Static{P: geo.Point{X: m.X, Y: m.Y}}, nil
	case "line":
		return geo.Line{
			From:  geo.Point{X: m.X, Y: m.Y},
			To:    geo.Point{X: m.ToX, Y: m.ToY},
			Speed: m.Speed,
		}, nil
	case "orbit":
		return geo.Orbit{
			Center: geo.Point{X: m.X, Y: m.Y},
			Radius: m.Radius,
			Omega:  m.OmegaRadPerSec,
		}, nil
	case "waypoint":
		side := m.AreaSide
		if side <= 0 {
			return nil, fmt.Errorf("scenario: waypoint mobility needs areaSideM > 0")
		}
		seed := m.Seed
		if seed == 0 {
			seed = defaultSeed
		}
		return geo.NewRandomWaypoint(geo.Square(side), geo.Point{X: m.X, Y: m.Y},
			m.MinSpeed, m.MaxSpeed, m.Pause.Std(), seed)
	default:
		return nil, fmt.Errorf("scenario: unknown mobility type %q", m.Type)
	}
}

// Device describes one relay or UE.
type Device struct {
	ID string `json:"id"`
	// App is the profile name: standard, wechat, whatsapp, qq, facebook.
	App string `json:"app"`
	// ExtraApps adds more apps to a UE.
	ExtraApps []string `json:"extraApps"`
	// Capacity is the relay collection capacity M (relays only).
	Capacity    int      `json:"capacity"`
	StartOffset Duration `json:"startOffset"`
	Mobility    Mobility `json:"mobility"`
}

// Config is one declarative scenario.
type Config struct {
	Seed     int64    `json:"seed"`
	Duration Duration `json:"duration"`
	// Technique is wifi-direct (default), bluetooth or lte-direct.
	Technique string `json:"technique"`
	// Policy is nagle (default), immediate, fixed-delay or period-aligned.
	Policy string `json:"policy"`
	// FixedDelay applies to the fixed-delay policy.
	FixedDelay Duration `json:"fixedDelay"`
	// Channel enables control-channel load tracking.
	Channel bool     `json:"channel"`
	Relays  []Device `json:"relays"`
	UEs     []Device `json:"ues"`
}

// Load parses a scenario from JSON, rejecting unknown fields.
func Load(r io.Reader) (*Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// Validate reports the first structural problem in the scenario.
func (c *Config) Validate() error {
	if c.Duration.Std() <= 0 {
		return fmt.Errorf("scenario: duration must be positive")
	}
	if len(c.Relays)+len(c.UEs) == 0 {
		return fmt.Errorf("scenario: no devices")
	}
	seen := make(map[string]bool, len(c.Relays)+len(c.UEs))
	for _, d := range append(append([]Device(nil), c.Relays...), c.UEs...) {
		if d.ID == "" {
			return fmt.Errorf("scenario: device with empty id")
		}
		if seen[d.ID] {
			return fmt.Errorf("scenario: duplicate device id %q", d.ID)
		}
		seen[d.ID] = true
		if _, err := ProfileByName(d.App); err != nil {
			return err
		}
		for _, extra := range d.ExtraApps {
			if _, err := ProfileByName(extra); err != nil {
				return err
			}
		}
	}
	if _, err := techniqueByName(c.Technique); err != nil {
		return err
	}
	if _, err := policyByName(c.Policy); err != nil {
		return err
	}
	return nil
}

// Build constructs the simulation described by the scenario.
func (c *Config) Build() (*core.Simulation, error) {
	return c.build(false, nil)
}

// BuildWith constructs the scenario, optionally with D2D disabled — the
// original-system baseline of the same topology.
func (c *Config) BuildWith(disableD2D bool) (*core.Simulation, error) {
	return c.build(disableD2D, nil)
}

// BuildTraced constructs the scenario with an event tracer attached.
func (c *Config) BuildTraced(tracer trace.Tracer) (*core.Simulation, error) {
	return c.build(false, tracer)
}

func (c *Config) build(disableD2D bool, tracer trace.Tracer) (*core.Simulation, error) {
	tech, err := techniqueByName(c.Technique)
	if err != nil {
		return nil, err
	}
	policy, err := policyByName(c.Policy)
	if err != nil {
		return nil, err
	}
	opts := core.Options{
		Seed:       c.Seed,
		Duration:   c.Duration.Std(),
		Technique:  tech,
		Policy:     policy,
		FixedDelay: c.FixedDelay.Std(),
		DisableD2D: disableD2D,
		Tracer:     tracer,
	}
	if c.Channel {
		ch := cellular.DefaultChannelConfig()
		opts.Channel = &ch
	}
	sim, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	for i, d := range c.Relays {
		profile, err := ProfileByName(d.App)
		if err != nil {
			return nil, err
		}
		mob, err := d.Mobility.build(c.Seed + int64(i) + 1)
		if err != nil {
			return nil, fmt.Errorf("scenario: relay %s: %w", d.ID, err)
		}
		if _, err := sim.AddRelay(core.RelaySpec{
			ID:          hbmsg.DeviceID(d.ID),
			Profile:     profile,
			Mobility:    mob,
			Capacity:    d.Capacity,
			StartOffset: d.StartOffset.Std(),
		}); err != nil {
			return nil, err
		}
	}
	for i, d := range c.UEs {
		profile, err := ProfileByName(d.App)
		if err != nil {
			return nil, err
		}
		var extras []hbmsg.AppProfile
		for _, name := range d.ExtraApps {
			p, err := ProfileByName(name)
			if err != nil {
				return nil, err
			}
			extras = append(extras, p)
		}
		mob, err := d.Mobility.build(c.Seed + int64(len(c.Relays)+i) + 1)
		if err != nil {
			return nil, fmt.Errorf("scenario: ue %s: %w", d.ID, err)
		}
		if _, err := sim.AddUE(core.UESpec{
			ID:            hbmsg.DeviceID(d.ID),
			Profile:       profile,
			ExtraProfiles: extras,
			Mobility:      mob,
			StartOffset:   d.StartOffset.Std(),
		}); err != nil {
			return nil, err
		}
	}
	return sim, nil
}

// ProfileByName resolves an app profile name.
func ProfileByName(name string) (hbmsg.AppProfile, error) {
	switch strings.ToLower(name) {
	case "", "standard":
		return hbmsg.StandardHeartbeat(), nil
	case "wechat":
		return hbmsg.WeChat(), nil
	case "whatsapp":
		return hbmsg.WhatsApp(), nil
	case "qq":
		return hbmsg.QQ(), nil
	case "facebook":
		return hbmsg.Facebook(), nil
	default:
		return hbmsg.AppProfile{}, fmt.Errorf("scenario: unknown app %q", name)
	}
}

func techniqueByName(name string) (radio.Technique, error) {
	switch strings.ToLower(name) {
	case "", "wifi-direct":
		return radio.WiFiDirect, nil
	case "bluetooth":
		return radio.Bluetooth, nil
	case "lte-direct":
		return radio.LTEDirect, nil
	default:
		return 0, fmt.Errorf("scenario: unknown technique %q", name)
	}
}

func policyByName(name string) (sched.Kind, error) {
	switch strings.ToLower(name) {
	case "", "nagle":
		return sched.KindNagle, nil
	case "immediate":
		return sched.KindImmediate, nil
	case "fixed-delay":
		return sched.KindFixedDelay, nil
	case "period-aligned":
		return sched.KindPeriodAligned, nil
	default:
		return 0, fmt.Errorf("scenario: unknown policy %q", name)
	}
}
