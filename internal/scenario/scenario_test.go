package scenario

import (
	"strings"
	"testing"
	"time"
)

const sample = `{
  "seed": 3,
  "duration": "22m40s",
  "technique": "wifi-direct",
  "policy": "nagle",
  "channel": true,
  "relays": [
    {"id": "relay-1", "app": "standard", "capacity": 8,
     "mobility": {"type": "static", "x": 10, "y": 10}}
  ],
  "ues": [
    {"id": "ue-1", "app": "wechat", "extraApps": ["qq"],
     "startOffset": "20s",
     "mobility": {"type": "static", "x": 11, "y": 10}},
    {"id": "ue-2", "app": "standard", "startOffset": "35s",
     "mobility": {"type": "orbit", "x": 10, "y": 10, "radiusM": 2}},
    {"id": "ue-3", "app": "standard", "startOffset": "50s",
     "mobility": {"type": "waypoint", "x": 20, "y": 20,
                  "minSpeedMps": 0.5, "maxSpeedMps": 1.5,
                  "pause": "10s", "areaSideM": 60}}
  ]
}`

func TestLoadAndBuild(t *testing.T) {
	cfg, err := Load(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if cfg.Seed != 3 || cfg.Duration.Std() != 22*time.Minute+40*time.Second {
		t.Fatalf("globals wrong: %+v", cfg)
	}
	sim, err := cfg.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Devices) != 4 {
		t.Fatalf("devices = %d, want 4", len(rep.Devices))
	}
	ue1, ok := rep.Device("ue-1")
	if !ok || ue1.UE == nil {
		t.Fatal("ue-1 missing")
	}
	// ue-1 runs two apps and sits 1 m from the relay: it forwards.
	if ue1.UE.SentViaD2D == 0 {
		t.Fatalf("ue-1 never forwarded: %+v", ue1.UE)
	}
	// Channel tracking was enabled.
	if rep.Channel.Windows == 0 {
		t.Fatal("channel tracking not enabled")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	tests := []struct {
		name string
		json string
	}{
		{"garbage", `{`},
		{"unknown field", `{"duration":"1m","bogus":1,"ues":[{"id":"a"}]}`},
		{"no duration", `{"ues":[{"id":"a"}]}`},
		{"no devices", `{"duration":"1m"}`},
		{"empty id", `{"duration":"1m","ues":[{"id":""}]}`},
		{"duplicate id", `{"duration":"1m","ues":[{"id":"a"},{"id":"a"}]}`},
		{"bad app", `{"duration":"1m","ues":[{"id":"a","app":"snapchat"}]}`},
		{"bad extra app", `{"duration":"1m","ues":[{"id":"a","extraApps":["nope"]}]}`},
		{"bad technique", `{"duration":"1m","technique":"carrier-pigeon","ues":[{"id":"a"}]}`},
		{"bad policy", `{"duration":"1m","policy":"yolo","ues":[{"id":"a"}]}`},
		{"bad duration", `{"duration":"soon","ues":[{"id":"a"}]}`},
		{"numeric duration", `{"duration":60,"ues":[{"id":"a"}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tt.json)); err == nil {
				t.Fatalf("accepted: %s", tt.json)
			}
		})
	}
}

func TestBuildRejectsBadMobility(t *testing.T) {
	cfg, err := Load(strings.NewReader(`{
	  "duration": "5m",
	  "ues": [{"id": "a", "mobility": {"type": "waypoint", "x": 1, "y": 1,
	           "minSpeedMps": 1, "maxSpeedMps": 2, "areaSideM": 0}}]
	}`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := cfg.Build(); err == nil {
		t.Fatal("waypoint without area accepted")
	}

	cfg2, err := Load(strings.NewReader(`{
	  "duration": "5m",
	  "ues": [{"id": "a", "mobility": {"type": "teleport"}}]
	}`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := cfg2.Build(); err == nil {
		t.Fatal("unknown mobility accepted")
	}
}

func TestMobilityVariants(t *testing.T) {
	m := Mobility{Type: "line", X: 0, Y: 0, ToX: 10, ToY: 0, Speed: 1}
	mob, err := m.build(1)
	if err != nil {
		t.Fatalf("line build: %v", err)
	}
	if got := mob.Pos(5 * time.Second); got.X != 5 {
		t.Fatalf("line pos = %v, want x=5", got)
	}
	m = Mobility{} // default static at origin
	mob, err = m.build(1)
	if err != nil {
		t.Fatalf("static build: %v", err)
	}
	if got := mob.Pos(time.Hour); got.X != 0 || got.Y != 0 {
		t.Fatalf("static moved: %v", got)
	}
}

func TestProfileByName(t *testing.T) {
	for name, wantPeriod := range map[string]time.Duration{
		"standard": 270 * time.Second,
		"wechat":   270 * time.Second,
		"whatsapp": 240 * time.Second,
		"qq":       300 * time.Second,
		"facebook": 300 * time.Second,
		"WeChat":   270 * time.Second, // case-insensitive
		"":         270 * time.Second, // default
	} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Errorf("ProfileByName(%q): %v", name, err)
			continue
		}
		if p.Period != wantPeriod {
			t.Errorf("ProfileByName(%q).Period = %v, want %v", name, p.Period, wantPeriod)
		}
	}
	if _, err := ProfileByName("icq"); err == nil {
		t.Fatal("unknown app accepted")
	}
}
