package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("loadue-%05d", i)
	}
	return out
}

func mustRing(t *testing.T, nodes []string, vnodes int) *Ring {
	t.Helper()
	r, err := NewRing(nodes, vnodes)
	if err != nil {
		t.Fatalf("NewRing(%v): %v", nodes, err)
	}
	return r
}

// TestRingOwnershipDeterministic pins cross-process determinism: ownership
// is a pure function of the sorted node set, independent of input order,
// and stable against a golden sample (so a hash change cannot slip in
// silently and split a live cluster's routing).
func TestRingOwnershipDeterministic(t *testing.T) {
	nodes := []string{"shard-0", "shard-1", "shard-2"}
	a := mustRing(t, nodes, 0)
	b := mustRing(t, []string{"shard-2", "shard-0", "shard-1"}, 0)
	for _, k := range keys(2000) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("node order changed ownership of %s: %s vs %s", k, ao, bo)
		}
	}

	// Golden owners pin the hash function and ring placement as a
	// cross-process contract: if this fails after an intentional hash
	// change, every routing party must be redeployed together.
	golden := map[string]string{
		"loadue-00000": "shard-2",
		"loadue-00001": "shard-1",
		"loadue-12345": "shard-2",
		"relay-7":      "shard-1",
	}
	for k, want := range golden {
		if got := a.Owner(k); got != want {
			t.Fatalf("golden owner of %s: got %s, want %s (ring hash changed)", k, got, want)
		}
	}
}

// TestRingBalance checks the vnode count keeps per-shard key counts within
// a sane band (no shard owns more than 2× its fair share at 10k keys).
func TestRingBalance(t *testing.T) {
	nodes := []string{"shard-0", "shard-1", "shard-2", "shard-3"}
	r := mustRing(t, nodes, 0)
	counts := make(map[string]int)
	ks := keys(10000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	fair := len(ks) / len(nodes)
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Fatalf("shard %s owns no keys", n)
		}
		if counts[n] > 2*fair {
			t.Fatalf("shard %s owns %d keys, over 2x fair share %d", n, counts[n], fair)
		}
	}
}

// TestRingBoundedMovement is the consistent-hashing property: adding or
// removing one of N shards moves only about K/N keys, and every key that
// does move lands on (add) or leaves (remove) the changed shard — no
// third-party shuffling.
func TestRingBoundedMovement(t *testing.T) {
	ks := keys(10000)
	for n := 2; n <= 6; n++ {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("shard-%d", i)
		}
		before := mustRing(t, nodes, 0)
		grown := mustRing(t, append([]string{"shard-new"}, nodes...), 0)
		moved := 0
		for _, k := range ks {
			ob, og := before.Owner(k), grown.Owner(k)
			if ob != og {
				moved++
				if og != "shard-new" {
					t.Fatalf("n=%d: key %s moved %s -> %s, not to the joining shard", n, k, ob, og)
				}
			}
		}
		// Fair share is K/(N+1); allow 2x for vnode variance.
		if limit := 2 * len(ks) / (n + 1); moved > limit {
			t.Fatalf("n=%d: %d keys moved on join, over limit %d", n, moved, limit)
		}
		if moved == 0 {
			t.Fatalf("n=%d: join moved no keys", n)
		}

		shrunk := mustRing(t, nodes[1:], 0)
		moved = 0
		for _, k := range ks {
			ob, os := before.Owner(k), shrunk.Owner(k)
			if ob != os {
				moved++
				if ob != "shard-0" {
					t.Fatalf("n=%d: key %s moved %s -> %s though shard-0 left", n, k, ob, os)
				}
			}
		}
		if limit := 2 * len(ks) / n; moved > limit {
			t.Fatalf("n=%d: %d keys moved on leave, over limit %d", n, moved, limit)
		}
	}
}

// TestRingGroupMatchesOwner checks the batch partition helper agrees with
// the single-key resolver.
func TestRingGroupMatchesOwner(t *testing.T) {
	r := mustRing(t, []string{"a", "b", "c"}, 64)
	ks := keys(500)
	groups := r.Group(ks)
	total := 0
	for node, idxs := range groups {
		total += len(idxs)
		for _, i := range idxs {
			if own := r.Owner(ks[i]); own != node {
				t.Fatalf("Group put %s under %s, Owner says %s", ks[i], node, own)
			}
		}
	}
	if total != len(ks) {
		t.Fatalf("Group covered %d of %d keys", total, len(ks))
	}
}

// TestRingGroupSortedDeterministic pins the ordered batch partition: the
// slice form must agree with Group, come back sorted by shard ID, and be
// byte-identical across calls — it is what keeps trunk fanout and replay
// routing deterministic per seed (maporder's fix for ranging over Group).
func TestRingGroupSortedDeterministic(t *testing.T) {
	r := mustRing(t, []string{"c", "a", "b"}, 64)
	ks := keys(500)
	groups := r.GroupSorted(ks)
	plain := r.Group(ks)
	if len(groups) != len(plain) {
		t.Fatalf("GroupSorted has %d shards, Group has %d", len(groups), len(plain))
	}
	total := 0
	for i, g := range groups {
		if i > 0 && groups[i-1].Shard >= g.Shard {
			t.Fatalf("groups not sorted: %s before %s", groups[i-1].Shard, g.Shard)
		}
		want := plain[g.Shard]
		if len(g.Idxs) != len(want) {
			t.Fatalf("shard %s: GroupSorted has %d keys, Group has %d", g.Shard, len(g.Idxs), len(want))
		}
		total += len(g.Idxs)
		for _, idx := range g.Idxs {
			if own := r.Owner(ks[idx]); own != g.Shard {
				t.Fatalf("GroupSorted put %s under %s, Owner says %s", ks[idx], g.Shard, own)
			}
		}
	}
	if total != len(ks) {
		t.Fatalf("GroupSorted covered %d of %d keys", total, len(ks))
	}
	again := r.GroupSorted(ks)
	for i := range groups {
		if groups[i].Shard != again[i].Shard || len(groups[i].Idxs) != len(again[i].Idxs) {
			t.Fatalf("GroupSorted not stable across calls at group %d", i)
		}
		for j := range groups[i].Idxs {
			if groups[i].Idxs[j] != again[i].Idxs[j] {
				t.Fatalf("GroupSorted shard %s index order changed across calls", groups[i].Shard)
			}
		}
	}
}

// TestRingValidation covers the constructor's error paths.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

// FuzzRingRouting drives the relay-fanout invariant under epoch changes: a
// party partitioning a batch against any single view must produce exactly
// the owners that view's ring reports, for arbitrary node sets and keys —
// including across a simulated epoch flip (remove one node). The fanout can
// be stale (an old epoch) but never torn (mixing epochs inside one batch).
func FuzzRingRouting(f *testing.F) {
	f.Add(int64(1), uint8(3), uint16(64))
	f.Add(int64(42), uint8(1), uint16(1))
	f.Add(int64(7), uint8(8), uint16(300))
	f.Fuzz(func(t *testing.T, seed int64, nodeCount uint8, keyCount uint16) {
		n := int(nodeCount%8) + 1
		rng := rand.New(rand.NewSource(seed))
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("s%d-%d", i, rng.Intn(1000))
		}
		ring, err := NewRing(nodes, 32)
		if err != nil {
			t.Skip() // rng may duplicate node names
		}
		ks := make([]string, int(keyCount%1024)+1)
		for i := range ks {
			ks[i] = fmt.Sprintf("k%d-%d", i, rng.Intn(1<<20))
		}
		check := func(r *Ring) {
			seen := 0
			for node, idxs := range r.Group(ks) {
				seen += len(idxs)
				for _, i := range idxs {
					if own := r.Owner(ks[i]); own != node {
						t.Fatalf("fanout sent %s to %s, ring owner is %s", ks[i], node, own)
					}
				}
			}
			if seen != len(ks) {
				t.Fatalf("fanout covered %d of %d keys", seen, len(ks))
			}
		}
		check(ring)
		if n > 1 {
			// Epoch flip: drop a random node, re-check the invariant on the
			// successor ring, and confirm only the dropped node's keys moved.
			drop := rng.Intn(n)
			rest := append(append([]string(nil), nodes[:drop]...), nodes[drop+1:]...)
			next, err := NewRing(rest, 32)
			if err != nil {
				t.Skip()
			}
			check(next)
			for _, k := range ks {
				ob, on := ring.Owner(k), next.Owner(k)
				if ob != on && ob != nodes[drop] {
					t.Fatalf("epoch flip moved %s from surviving shard %s to %s", k, ob, on)
				}
			}
		}
	})
}
