// Package cluster turns the single-process presence server into a
// consistent-hash presence cluster: a virtual-node hash ring shared by every
// party (servers, relays, load generators), an epoch-versioned cluster
// config served over HTTP by a router, and a drain/handoff protocol so a
// departing shard hands its presence state (client table + per-client
// sequence high-water marks) to its successors before it goes away.
//
// This is the backend half of the paper's aggregation-and-trunking argument
// (Rigazzi et al., arXiv:1502.01708): relays already trunk many UE
// heartbeats into one upstream connection, so a presence shard's connection
// count is dominated by relays and one box serves far more users than
// sockets. The ring spreads those users across N shards while keeping
// routing a pure function of (config, client ID) that every process
// computes identically.
package cluster

import (
	"fmt"
	"slices"
	"sort"
)

// DefaultVirtualNodes is the ring's default vnode count per shard. 128
// points per node keeps ownership imbalance under a few percent for small
// clusters while the ring stays tiny (N×128 points).
const DefaultVirtualNodes = 128

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is an immutable consistent-hash ring over shard IDs. Ownership is a
// pure function of the node-ID set and the vnode count — no process-local
// state — so every relay, UE and server that holds the same config resolves
// every key to the same shard.
type Ring struct {
	nodes  []string
	points []ringPoint
}

// NewRing builds a ring over the given shard IDs with vnodes virtual nodes
// per shard (0 selects DefaultVirtualNodes). Node order does not matter:
// the ring is canonicalized by sorting, so two processes holding the same
// ID set in different orders still agree on every owner.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := slices.Clone(nodes)
	slices.Sort(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", sorted[i])
		}
	}
	r := &Ring{
		nodes:  sorted,
		points: make([]ringPoint, 0, len(sorted)*vnodes),
	}
	var buf []byte
	for ni, id := range sorted {
		for v := 0; v < vnodes; v++ {
			buf = buf[:0]
			buf = append(buf, id...)
			buf = append(buf, '#')
			buf = appendUint(buf, uint64(v))
			r.points = append(r.points, ringPoint{hash: hash64(buf), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (astronomically rare) break by node index so the
		// ring stays order-independent.
		return a.node < b.node
	})
	return r, nil
}

// Nodes returns the ring's shard IDs in canonical (sorted) order.
func (r *Ring) Nodes() []string { return slices.Clone(r.nodes) }

// Size returns the shard count.
func (r *Ring) Size() int { return len(r.nodes) }

// Owner returns the shard ID owning key: the first virtual node clockwise
// from the key's hash.
func (r *Ring) Owner(key string) string {
	return r.nodes[r.ownerIndex(key)]
}

func (r *Ring) ownerIndex(key string) int {
	h := hash64([]byte(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Group partitions keys by owning shard, returning for each shard the
// indices of the keys it owns. Relays use it to split a flushed batch into
// per-shard sub-batches; the routing fuzz test asserts it agrees with Owner
// key by key.
func (r *Ring) Group(keys []string) map[string][]int {
	out := make(map[string][]int, len(r.nodes))
	for i, k := range keys {
		id := r.nodes[r.ownerIndex(k)]
		out[id] = append(out[id], i)
	}
	return out
}

// ShardGroup is one shard's slice of a partitioned batch: the owning
// shard and the indices of the keys it owns, in input order.
type ShardGroup struct {
	Shard string
	Idxs  []int
}

// GroupSorted is Group with a deterministic iteration order: the groups
// come back sorted by shard ID. Order-sensitive callers — anything that
// records trace events or emits per-shard output while walking the
// partition — use this so two runs over the same keys behave identically.
func (r *Ring) GroupSorted(keys []string) []ShardGroup {
	m := r.Group(keys)
	out := make([]ShardGroup, 0, len(m))
	for id, idxs := range m {
		out = append(out, ShardGroup{Shard: id, Idxs: idxs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

// hash64 is FNV-1a followed by a murmur3-style finalizer, inlined so
// ownership never depends on a hash seed or process state: the same bytes
// map to the same shard in every process. The finalizer matters: raw FNV-1a
// barely diffuses a trailing-character change into the high bits, so a
// node's virtual points ("id#0", "id#1", …) would land in one tight band
// and the ring would degenerate into contiguous per-node arcs.
func hash64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// appendUint appends the decimal representation of v.
func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}
