package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"d2dhb/internal/telemetry"
)

// NodeAgent is the shard-side half of the drain/handoff protocol: an HTTP
// handler mounted on the shard's telemetry server that lets the router
// snapshot the shard's presence state, import a departing peer's state, and
// flip the shard's draining flag (which gates /readyz).
type NodeAgent struct {
	store  Store
	health *telemetry.Health
}

// NewNodeAgent wires a presence store (relaynet.Server) and the shard's
// health state together.
func NewNodeAgent(store Store, health *telemetry.Health) *NodeAgent {
	return &NodeAgent{store: store, health: health}
}

// Handler returns the /cluster/* handler block:
//
//	GET  /cluster/snapshot  JSON []PresenceEntry (the full client table)
//	POST /cluster/import    JSON []PresenceEntry, merged into the table
//	POST /cluster/forget    JSON []string of client IDs to drop
//	POST /cluster/draining?v=true|false
//
// Mount it with telemetry.WithHandler("/cluster/", agent.Handler()).
func (a *NodeAgent) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(a.store.ExportPresence())
	})
	mux.HandleFunc("/cluster/import", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		data, err := io.ReadAll(io.LimitReader(r.Body, maxSnapshotBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var entries []PresenceEntry
		if err := json.Unmarshal(data, &entries); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		a.store.ImportPresence(entries)
		fmt.Fprintf(w, "imported %d\n", len(entries))
	})
	mux.HandleFunc("/cluster/forget", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		data, err := io.ReadAll(io.LimitReader(r.Body, maxSnapshotBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var ids []string
		if err := json.Unmarshal(data, &ids); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		a.store.ForgetPresence(ids)
		fmt.Fprintf(w, "forgot %d\n", len(ids))
	})
	mux.HandleFunc("/cluster/draining", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		v, err := strconv.ParseBool(r.URL.Query().Get("v"))
		if err != nil {
			http.Error(w, "bad v parameter", http.StatusBadRequest)
			return
		}
		a.store.SetDraining(v)
		if a.health != nil {
			a.health.SetReady(!v)
		}
		fmt.Fprintf(w, "draining=%v\n", v)
	})
	return mux
}

// maxSnapshotBytes bounds a handoff body: ~190 bytes/entry JSON puts one
// million clients around 190 MB; 256 MB leaves headroom without letting a
// confused peer stream forever.
const maxSnapshotBytes = 256 << 20
