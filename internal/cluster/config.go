package cluster

import (
	"encoding/json"
	"fmt"
	"slices"
)

// Node is one presence shard in the cluster config.
type Node struct {
	// ID is the shard's stable identity (the ring hashes IDs, not
	// addresses, so a shard can restart on a new port without moving keys).
	ID string `json:"id"`
	// Addr is the shard's hbproto listener (relays and UEs dial it).
	Addr string `json:"addr"`
	// HTTP is the shard's telemetry/admin listener: /healthz, /readyz,
	// /metrics[.json] and the /cluster/{snapshot,import,draining} handoff
	// endpoints.
	HTTP string `json:"http"`
}

// Config is one epoch of cluster membership. Epochs are totally ordered:
// every reshard (join, drain, eviction) publishes a new config with a
// higher epoch, and routing parties switch rings atomically at the epoch
// boundary — a party never mixes two epochs inside one batch.
type Config struct {
	Epoch uint64 `json:"epoch"`
	Nodes []Node `json:"nodes"`
}

// Validate checks the config is routable: at least one node, no duplicate
// IDs, no empty ID/Addr.
func (c Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: config epoch %d has no nodes", c.Epoch)
	}
	seen := make(map[string]bool, len(c.Nodes))
	for _, n := range c.Nodes {
		if n.ID == "" || n.Addr == "" {
			return fmt.Errorf("cluster: config epoch %d has node with empty id/addr (%+v)", c.Epoch, n)
		}
		if seen[n.ID] {
			return fmt.Errorf("cluster: config epoch %d duplicates node %q", c.Epoch, n.ID)
		}
		seen[n.ID] = true
	}
	return nil
}

// Node returns the node with the given ID.
func (c Config) Node(id string) (Node, bool) {
	for _, n := range c.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// IDs returns the node IDs in config order.
func (c Config) IDs() []string {
	ids := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		ids[i] = n.ID
	}
	return ids
}

// clone returns a deep copy.
func (c Config) clone() Config {
	return Config{Epoch: c.Epoch, Nodes: slices.Clone(c.Nodes)}
}

// View is an immutable (config, ring) pair — one epoch's routing table.
// Every lookup a party performs against one View is internally consistent;
// switching Views is how an epoch boundary takes effect.
type View struct {
	Config Config
	ring   *Ring
}

// NewView builds the routing view for a config (vnodes 0 selects
// DefaultVirtualNodes).
func NewView(cfg Config, vnodes int) (*View, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ring, err := NewRing(cfg.IDs(), vnodes)
	if err != nil {
		return nil, err
	}
	return &View{Config: cfg, ring: ring}, nil
}

// Epoch returns the view's config epoch.
func (v *View) Epoch() uint64 { return v.Config.Epoch }

// Ring returns the view's hash ring.
func (v *View) Ring() *Ring { return v.ring }

// Owner resolves the shard owning a client ID.
func (v *View) Owner(key string) (Node, bool) {
	return v.Config.Node(v.ring.Owner(key))
}

// MarshalConfig encodes a config as the wire JSON the router serves.
func MarshalConfig(c Config) ([]byte, error) { return json.Marshal(c) }

// UnmarshalConfig decodes and validates a router config response.
func UnmarshalConfig(data []byte) (Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("cluster: bad config JSON: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// PresenceEntry is one client's presence state on the wire during a drain
// handoff: the client table row plus the per-client delivered-sequence
// high-water mark, so the successor resumes exactly where the departing
// shard stopped (no lost presence, no regressed sequence accounting).
type PresenceEntry struct {
	ID string `json:"id"`
	// App is the client's (last) heartbeat app.
	App string `json:"app"`
	// LastSeenUnixNano is the last heartbeat arrival instant.
	LastSeenUnixNano int64 `json:"last_seen_unix_nano"`
	// DeadlineUnixNano is the presence expiration instant.
	DeadlineUnixNano int64 `json:"deadline_unix_nano"`
	// MaxSeq is the highest heartbeat sequence delivered for this client —
	// the pending-ack high-water mark a successor must not regress.
	MaxSeq uint64 `json:"max_seq"`
}

// Store is the shard-side presence state a cluster node agent drains and
// restores. relaynet.Server implements it.
type Store interface {
	// ExportPresence snapshots every tracked client.
	ExportPresence() []PresenceEntry
	// ImportPresence merges entries into the table, keeping the later
	// deadline/lastSeen and the higher sequence high-water per client (an
	// import never regresses fresher state the shard already holds).
	ImportPresence([]PresenceEntry)
	// ForgetPresence drops clients whose keys moved to another shard, so
	// per-shard occupancy stays truthful after a join reshard.
	ForgetPresence(ids []string)
	// SetDraining flips the shard's draining flag (readiness gate).
	SetDraining(bool)
}
