package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"d2dhb/internal/telemetry"
)

// fakeStore is an in-memory Store for control-plane tests.
type fakeStore struct {
	mu       sync.Mutex
	entries  map[string]PresenceEntry
	draining bool
}

func newFakeStore() *fakeStore {
	return &fakeStore{entries: make(map[string]PresenceEntry)}
}

func (s *fakeStore) ExportPresence() []PresenceEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PresenceEntry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	return out
}

func (s *fakeStore) ImportPresence(entries []PresenceEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		cur, ok := s.entries[e.ID]
		if !ok || e.DeadlineUnixNano > cur.DeadlineUnixNano {
			if ok && cur.MaxSeq > e.MaxSeq {
				e.MaxSeq = cur.MaxSeq
			}
			s.entries[e.ID] = e
		}
	}
}

func (s *fakeStore) ForgetPresence(ids []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		delete(s.entries, id)
	}
}

func (s *fakeStore) SetDraining(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = v
}

func (s *fakeStore) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *fakeStore) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// testShard is one fake shard: a Store served by a real NodeAgent on a
// httptest server, with real /healthz + /readyz.
type testShard struct {
	id     string
	store  *fakeStore
	health *telemetry.Health
	srv    *httptest.Server
}

func newTestShard(t *testing.T, id string) *testShard {
	t.Helper()
	sh := &testShard{id: id, store: newFakeStore(), health: telemetry.NewHealth()}
	agent := NewNodeAgent(sh.store, sh.health)
	mux := http.NewServeMux()
	mux.Handle("/cluster/", agent.Handler())
	telemetry.WithHealth(sh.health)(mux)
	sh.srv = httptest.NewServer(mux)
	t.Cleanup(sh.srv.Close)
	return sh
}

func (sh *testShard) node() Node {
	return Node{ID: sh.id, Addr: "127.0.0.1:1", HTTP: sh.srv.URL}
}

func shardURL(sh *testShard, path string) string { return sh.srv.URL + path }

func startRouter(t *testing.T, rcfg RouterConfig) (*Router, *httptest.Server) {
	t.Helper()
	r, err := NewRouter(rcfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(r.Close)
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(srv.Close)
	return r, srv
}

func eventually(t *testing.T, within time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// entriesFor builds n presence entries owned (under ring) by nothing in
// particular — callers filter by owner as needed.
func seedEntries(s *fakeStore, prefix string, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s-%04d", prefix, i)
		s.entries[id] = PresenceEntry{
			ID: id, App: "std",
			LastSeenUnixNano: int64(1000 + i),
			DeadlineUnixNano: int64(2000 + i),
			MaxSeq:           uint64(i),
		}
	}
}

// TestRouterConfigAndClient covers the serve/poll path: the client fetches
// the initial epoch, observes a flip, and never steps backwards.
func TestRouterConfigAndClient(t *testing.T) {
	a, b := newTestShard(t, "shard-a"), newTestShard(t, "shard-b")
	_, srv := startRouter(t, RouterConfig{
		Initial:        Config{Epoch: 1, Nodes: []Node{a.node(), b.node()}},
		HealthInterval: -1,
		SettleDelay:    time.Millisecond,
	})

	reg := telemetry.NewRegistry()
	c, err := NewClient(ClientConfig{
		RouterURL:    srv.URL,
		PollInterval: 20 * time.Millisecond,
		Telemetry:    reg,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(c.Close)
	if c.Epoch() != 1 {
		t.Fatalf("initial epoch = %d, want 1", c.Epoch())
	}
	if _, ok := c.View().Owner("some-client"); !ok {
		t.Fatal("view resolves no owner")
	}

	// Drain b: epoch flips to 2 and the poller picks it up.
	resp, err := http.Post(srv.URL+"/cluster/drain?id=shard-b", "", nil)
	if err != nil {
		t.Fatalf("drain POST: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %s", resp.Status)
	}
	eventually(t, 2*time.Second, func() bool { return c.Epoch() == 2 }, "client observing epoch 2")
	if got := c.View().Ring().Size(); got != 1 {
		t.Fatalf("post-drain ring size = %d, want 1", got)
	}
	if !b.store.isDraining() {
		t.Fatal("drained shard never saw its draining flag")
	}
}

// TestRouterDrainHandsStateToSuccessors is the handoff core: every entry on
// the drained shard lands on the shard now owning its key, and the drained
// shard's /readyz flips to 503 while the survivor stays ready.
func TestRouterDrainHandsStateToSuccessors(t *testing.T) {
	a, b := newTestShard(t, "shard-a"), newTestShard(t, "shard-b")
	seedEntries(a.store, "client", 200)
	r, _ := startRouter(t, RouterConfig{
		Initial:        Config{Epoch: 1, Nodes: []Node{a.node(), b.node()}},
		HealthInterval: -1,
		SettleDelay:    time.Millisecond,
	})

	if err := r.Drain("shard-a"); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := b.store.count(); got != 200 {
		t.Fatalf("successor holds %d entries, want all 200", got)
	}
	// High-water marks survive the move.
	if e, ok := b.store.entries["client-0199"]; !ok || e.MaxSeq != 199 {
		t.Fatalf("entry client-0199 = %+v, want MaxSeq 199", e)
	}

	ready := func(sh *testShard) int {
		resp, err := http.Get(shardURL(sh, "/readyz"))
		if err != nil {
			t.Fatalf("readyz: %v", err)
		}
		_ = resp.Body.Close()
		return resp.StatusCode
	}
	if code := ready(a); code != http.StatusServiceUnavailable {
		t.Fatalf("drained shard /readyz = %d, want 503", code)
	}
	if code := ready(b); code != http.StatusOK {
		t.Fatalf("surviving shard /readyz = %d, want 200", code)
	}

	// The last shard is protected.
	if err := r.Drain("shard-b"); err == nil {
		t.Fatal("drained the last shard")
	}
}

// TestRouterJoinMovesOwnedKeys: a joining shard receives exactly the keys
// the new ring assigns it, and the previous owners forget them.
func TestRouterJoinMovesOwnedKeys(t *testing.T) {
	a := newTestShard(t, "shard-a")
	seedEntries(a.store, "client", 300)
	r, _ := startRouter(t, RouterConfig{
		Initial:        Config{Epoch: 5, Nodes: []Node{a.node()}},
		HealthInterval: -1,
		SettleDelay:    time.Millisecond,
	})

	b := newTestShard(t, "shard-b")
	if err := r.Join(b.node()); err != nil {
		t.Fatalf("Join: %v", err)
	}
	cfg := r.Config()
	if cfg.Epoch != 6 || len(cfg.Nodes) != 2 {
		t.Fatalf("post-join config = %+v", cfg)
	}
	view, err := NewView(cfg, 0)
	if err != nil {
		t.Fatalf("NewView: %v", err)
	}
	wantB := 0
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("client-%04d", i)
		owner := view.Ring().Owner(id)
		onB := func() bool { b.store.mu.Lock(); defer b.store.mu.Unlock(); _, ok := b.store.entries[id]; return ok }()
		onA := func() bool { a.store.mu.Lock(); defer a.store.mu.Unlock(); _, ok := a.store.entries[id]; return ok }()
		if owner == "shard-b" {
			wantB++
			if !onB {
				t.Fatalf("moved key %s missing on joiner", id)
			}
			if onA {
				t.Fatalf("moved key %s not forgotten on old owner", id)
			}
		} else if !onA || onB {
			t.Fatalf("unmoved key %s misplaced (onA=%v onB=%v)", id, onA, onB)
		}
	}
	if wantB == 0 {
		t.Fatal("join moved no keys; ring degenerate")
	}
	// Duplicate joins are rejected.
	if err := r.Join(b.node()); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

// TestRouterHealthEviction: a shard whose /healthz stops answering is
// evicted after the failure threshold, bumping the epoch — the crash half
// of live resharding.
func TestRouterHealthEviction(t *testing.T) {
	a, b := newTestShard(t, "shard-a"), newTestShard(t, "shard-b")
	r, _ := startRouter(t, RouterConfig{
		Initial:        Config{Epoch: 1, Nodes: []Node{a.node(), b.node()}},
		HealthInterval: 20 * time.Millisecond,
		HealthFailures: 2,
		HTTPTimeout:    200 * time.Millisecond,
		SettleDelay:    time.Millisecond,
	})

	b.srv.Close() // shard-b dies without a drain
	eventually(t, 5*time.Second, func() bool {
		cfg := r.Config()
		_, ok := cfg.Node("shard-b")
		return !ok && cfg.Epoch == 2
	}, "dead shard evicted at epoch 2")
	if _, ok := r.Config().Node("shard-a"); !ok {
		t.Fatal("healthy shard evicted too")
	}
}

// TestClientStatic covers the no-router client used by single-server
// deployments and in-process tests.
func TestClientStatic(t *testing.T) {
	cfg := Config{Epoch: 9, Nodes: []Node{{ID: "only", Addr: "127.0.0.1:1"}}}
	c, err := NewStaticClient(cfg, 0)
	if err != nil {
		t.Fatalf("NewStaticClient: %v", err)
	}
	t.Cleanup(c.Close)
	if c.Epoch() != 9 {
		t.Fatalf("epoch = %d, want 9", c.Epoch())
	}
	if err := c.Refresh(); err != nil {
		t.Fatalf("static Refresh: %v", err)
	}
	n, ok := c.View().Owner("anything")
	if !ok || n.ID != "only" {
		t.Fatalf("owner = %+v, %v", n, ok)
	}
}

// TestConfigValidation covers config error paths and JSON round-trip.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Epoch: 1, Nodes: []Node{{ID: "", Addr: "x"}}},
		{Epoch: 1, Nodes: []Node{{ID: "a", Addr: "x"}, {ID: "a", Addr: "y"}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d validated", i)
		}
	}
	good := Config{Epoch: 3, Nodes: []Node{{ID: "a", Addr: "x", HTTP: "http://h"}}}
	data, err := MarshalConfig(good)
	if err != nil {
		t.Fatalf("MarshalConfig: %v", err)
	}
	back, err := UnmarshalConfig(data)
	if err != nil {
		t.Fatalf("UnmarshalConfig: %v", err)
	}
	if back.Epoch != 3 || len(back.Nodes) != 1 || back.Nodes[0] != good.Nodes[0] {
		t.Fatalf("round-trip = %+v", back)
	}
}
