package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"slices"
	"sync"
	"time"

	"d2dhb/internal/telemetry"
)

// RouterConfig parameterizes the cluster router.
type RouterConfig struct {
	// Initial is the starting membership; its epoch is the starting epoch.
	Initial Config
	// VirtualNodes is the ring vnode count used when redistributing state;
	// zero selects DefaultVirtualNodes. Must match the routing parties.
	VirtualNodes int
	// HealthInterval is the liveness probe period for auto-eviction; zero
	// selects 250 ms, negative disables the health loop.
	HealthInterval time.Duration
	// HealthFailures is how many consecutive probe failures evict a shard;
	// zero selects 3.
	HealthFailures int
	// SettleDelay is how long a drain waits after publishing the new epoch
	// before snapshotting the departing shard, so routing parties polling
	// the config stop sending to it first and the snapshot carries final
	// high-water marks. Zero selects 2×DefaultPollInterval.
	SettleDelay time.Duration
	// HTTPTimeout bounds every probe/handoff request; zero selects 5 s.
	HTTPTimeout time.Duration
	// Telemetry, when non-nil, registers the router's epoch/membership
	// gauges and reshard counters.
	Telemetry *telemetry.Registry
}

// Router is the cluster's control plane: it serves the epoch-versioned
// config, probes shard liveness (auto-evicting dead shards so routing
// parties stop targeting them), and orchestrates graceful drains — flip the
// epoch, wait for routes to settle, snapshot the departing shard, and
// import its presence state into the successors that now own each key.
//
// The router is intentionally not in the data path: heartbeats never pass
// through it, so its availability bounds resharding agility, not delivery.
type Router struct {
	rcfg RouterConfig
	http *http.Client

	mu   sync.Mutex
	cfg  Config
	fail map[string]int

	// opMu serializes reshard operations (drain/join/evict) so two
	// concurrent drains cannot interleave their flip+handoff sequences.
	opMu sync.Mutex

	drains    *telemetry.Counter
	joins     *telemetry.Counter
	evictions *telemetry.Counter

	done   chan struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewRouter validates the initial membership and starts the health loop.
func NewRouter(rcfg RouterConfig) (*Router, error) {
	if err := rcfg.Initial.Validate(); err != nil {
		return nil, err
	}
	if _, err := NewView(rcfg.Initial, rcfg.VirtualNodes); err != nil {
		return nil, err
	}
	to := rcfg.HTTPTimeout
	if to <= 0 {
		to = 5 * time.Second
	}
	r := &Router{
		rcfg: rcfg,
		http: &http.Client{Timeout: to},
		cfg:  rcfg.Initial.clone(),
		fail: make(map[string]int),
		done: make(chan struct{}),
	}
	if reg := rcfg.Telemetry; reg != nil {
		r.drains = reg.Counter("cluster_router_drains_total")
		r.joins = reg.Counter("cluster_router_joins_total")
		r.evictions = reg.Counter("cluster_router_evictions_total")
		reg.GaugeFunc("cluster_router_epoch", func() float64 {
			return float64(r.Config().Epoch)
		})
		reg.GaugeFunc("cluster_router_nodes", func() float64 {
			return float64(len(r.Config().Nodes))
		})
	}
	if rcfg.HealthInterval >= 0 {
		interval := rcfg.HealthInterval
		if interval == 0 {
			interval = 250 * time.Millisecond
		}
		r.wg.Add(1)
		go r.healthLoop(interval)
	}
	return r, nil
}

// Config returns the current membership.
func (r *Router) Config() Config {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg.clone()
}

// Handler serves the control plane:
//
//	GET  /cluster/config    current Config as JSON
//	POST /cluster/drain?id=X   graceful drain (flip, settle, handoff)
//	POST /cluster/evict?id=X   forced removal, no handoff (crash path)
//	POST /cluster/join         JSON Node body; handoff moved keys to it
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/config", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := MarshalConfig(r.Config())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(append(data, '\n'))
	})
	mux.HandleFunc("/cluster/drain", func(w http.ResponseWriter, req *http.Request) {
		r.membershipOp(w, req, func(id string) error { return r.Drain(id) })
	})
	mux.HandleFunc("/cluster/evict", func(w http.ResponseWriter, req *http.Request) {
		r.membershipOp(w, req, func(id string) error { return r.Evict(id) })
	})
	mux.HandleFunc("/cluster/join", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var n Node
		if err := json.NewDecoder(io.LimitReader(req.Body, 1<<16)).Decode(&n); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := r.Join(n); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Fprintf(w, "joined %s at epoch %d\n", n.ID, r.Config().Epoch)
	})
	return mux
}

// membershipOp runs one id-keyed POST operation.
func (r *Router) membershipOp(w http.ResponseWriter, req *http.Request, op func(string) error) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id := req.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	if err := op(id); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	fmt.Fprintf(w, "ok: epoch %d\n", r.Config().Epoch)
}

// Drain gracefully removes a shard: mark it draining (its /readyz flips
// false), publish the successor config at epoch+1, wait SettleDelay for
// routing parties to pick the new epoch up, snapshot the now-quiescent
// shard and import each key's state into its new owner. The shard keeps
// serving throughout — callers shut it down only after Drain returns, so a
// rolling restart loses zero heartbeats.
//
// Membership is updated even when the handoff fails (a half-dead shard must
// still leave the ring); the error then reports the incomplete handoff.
func (r *Router) Drain(id string) error {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	node, next, err := r.removalConfig(id)
	if err != nil {
		return err
	}
	// Best effort: the draining flag only gates /readyz, and a shard that
	// cannot flip it can still hand its state off.
	_ = r.post(node.HTTP+"/cluster/draining?v=true", nil)

	view, err := NewView(next, r.rcfg.VirtualNodes)
	if err != nil {
		return err
	}
	r.publish(next)
	r.drains.Inc()
	// Holding opMu across the settle window is the drain ordering: no
	// other membership op may interleave between publishing the shrunken
	// config and snapshotting the departing shard, or the handoff could
	// target a ring that no longer exists.
	r.settle() //lint:allow lockheld opMu serializes membership ops across the settle window by design

	entries, err := r.snapshot(node)
	if err != nil {
		return fmt.Errorf("cluster: drain %s: membership updated but handoff failed: %w", id, err)
	}
	return r.distribute(view, entries, "")
}

// Evict removes a shard with no handoff — the crash path. Presence state
// on the evicted shard is lost (clients refresh it with their next
// heartbeat; the chaos suite asserts no heartbeat itself is lost).
func (r *Router) Evict(id string) error {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	_, next, err := r.removalConfig(id)
	if err != nil {
		return err
	}
	r.publish(next)
	r.evictions.Inc()
	return nil
}

// Join adds a shard and hands it the keys it now owns: snapshot every
// incumbent, publish the new config, import the moved entries into the
// joiner and tell the previous owners to forget them (so per-shard
// occupancy stays truthful).
func (r *Router) Join(n Node) error {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	if n.ID == "" || n.Addr == "" {
		return fmt.Errorf("cluster: join needs id and addr, got %+v", n)
	}
	cur := r.Config()
	if _, ok := cur.Node(n.ID); ok {
		return fmt.Errorf("cluster: node %q already in the cluster", n.ID)
	}
	next := Config{Epoch: cur.Epoch + 1, Nodes: append(slices.Clone(cur.Nodes), n)}
	view, err := NewView(next, r.rcfg.VirtualNodes)
	if err != nil {
		return err
	}
	// Snapshot incumbents before the flip: keys moving to the joiner stop
	// receiving traffic at their old owner the moment parties see the new
	// epoch, so the pre-flip snapshot is their final state (heartbeats in
	// the gap merge fresher state at the joiner anyway, by max-merge).
	var moved []PresenceEntry
	forget := make(map[string][]string)
	for _, inc := range cur.Nodes {
		entries, err := r.snapshot(inc)
		if err != nil {
			return fmt.Errorf("cluster: join %s: snapshot %s: %w", n.ID, inc.ID, err)
		}
		for _, e := range entries {
			if view.Ring().Owner(e.ID) == n.ID {
				moved = append(moved, e)
				forget[inc.ID] = append(forget[inc.ID], e.ID)
			}
		}
	}
	r.publish(next)
	r.joins.Inc()
	if err := r.importTo(n, moved); err != nil {
		return fmt.Errorf("cluster: join %s: membership updated but handoff failed: %w", n.ID, err)
	}
	for _, inc := range cur.Nodes {
		if ids := forget[inc.ID]; len(ids) > 0 {
			_ = r.forget(inc, ids) // best effort: stale copies only skew gauges
		}
	}
	return nil
}

// removalConfig validates a removal and returns the node plus the
// successor config.
func (r *Router) removalConfig(id string) (Node, Config, error) {
	cur := r.Config()
	node, ok := cur.Node(id)
	if !ok {
		return Node{}, Config{}, fmt.Errorf("cluster: unknown node %q", id)
	}
	if len(cur.Nodes) == 1 {
		return Node{}, Config{}, fmt.Errorf("cluster: refusing to remove the last shard %q", id)
	}
	nodes := make([]Node, 0, len(cur.Nodes)-1)
	for _, n := range cur.Nodes {
		if n.ID != id {
			nodes = append(nodes, n)
		}
	}
	return node, Config{Epoch: cur.Epoch + 1, Nodes: nodes}, nil
}

// publish swaps the current config.
func (r *Router) publish(next Config) {
	r.mu.Lock()
	r.cfg = next.clone()
	r.mu.Unlock()
}

// settle sleeps long enough for config pollers to observe a fresh epoch.
func (r *Router) settle() {
	d := r.rcfg.SettleDelay
	if d <= 0 {
		d = 2 * DefaultPollInterval
	}
	select {
	case <-r.done:
	case <-time.After(d):
	}
}

// distribute imports entries into the shard owning each key under view,
// skipping skipID (already-imported or departing shards).
func (r *Router) distribute(view *View, entries []PresenceEntry, skipID string) error {
	byOwner := make(map[string][]PresenceEntry)
	for _, e := range entries {
		owner := view.Ring().Owner(e.ID)
		if owner == skipID {
			continue
		}
		byOwner[owner] = append(byOwner[owner], e)
	}
	var firstErr error
	for id, group := range byOwner {
		node, ok := view.Config.Node(id)
		if !ok {
			continue
		}
		if err := r.importTo(node, group); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// snapshot GETs a shard's full presence table.
func (r *Router) snapshot(n Node) ([]PresenceEntry, error) {
	resp, err := r.http.Get(n.HTTP + "/cluster/snapshot")
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("snapshot %s: %s", n.ID, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotBytes))
	if err != nil {
		return nil, err
	}
	var entries []PresenceEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", n.ID, err)
	}
	return entries, nil
}

// importTo POSTs entries to a shard's import endpoint.
func (r *Router) importTo(n Node, entries []PresenceEntry) error {
	if len(entries) == 0 {
		return nil
	}
	data, err := json.Marshal(entries)
	if err != nil {
		return err
	}
	return r.post(n.HTTP+"/cluster/import", data)
}

// forget POSTs a moved-key list to a shard's forget endpoint.
func (r *Router) forget(n Node, ids []string) error {
	data, err := json.Marshal(ids)
	if err != nil {
		return err
	}
	return r.post(n.HTTP+"/cluster/forget", data)
}

// post issues one JSON POST, treating any non-2xx as an error.
func (r *Router) post(url string, body []byte) error {
	resp, err := r.http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST %s: %s", url, resp.Status)
	}
	return nil
}

// healthLoop probes every shard's /healthz, evicting a shard after
// HealthFailures consecutive failures — the live-resharding answer to a
// crashed shard: the epoch bumps, routing parties re-pull the config, and
// the dead shard's keys route to its ring successors.
func (r *Router) healthLoop(interval time.Duration) {
	defer r.wg.Done()
	threshold := r.rcfg.HealthFailures
	if threshold <= 0 {
		threshold = 3
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
			for _, n := range r.Config().Nodes {
				if r.probe(n) {
					r.mu.Lock()
					delete(r.fail, n.ID)
					r.mu.Unlock()
					continue
				}
				r.mu.Lock()
				r.fail[n.ID]++
				evict := r.fail[n.ID] >= threshold
				if evict {
					delete(r.fail, n.ID)
				}
				r.mu.Unlock()
				if evict {
					_ = r.Evict(n.ID) // last-shard removals stay refused
				}
			}
		}
	}
}

// probe checks one shard's liveness endpoint.
func (r *Router) probe(n Node) bool {
	resp, err := r.http.Get(n.HTTP + "/healthz")
	if err != nil {
		return false
	}
	_ = resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Close stops the health loop. The router's HTTP handler keeps answering
// with the last published config if still mounted.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.done)
	r.mu.Unlock()
	r.wg.Wait()
}
