package cluster

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"d2dhb/internal/telemetry"
)

// DefaultPollInterval is how often a Client refetches the router config
// when no interval is configured. Epoch boundaries therefore propagate to
// every routing party within about one interval.
const DefaultPollInterval = 250 * time.Millisecond

// ClientConfig parameterizes a cluster config client.
type ClientConfig struct {
	// RouterURL is the router's base URL (e.g. "http://127.0.0.1:7590").
	// The client fetches RouterURL + "/cluster/config".
	RouterURL string
	// PollInterval is the config refresh period; zero selects
	// DefaultPollInterval. Negative disables background polling (the
	// config only changes through Refresh calls).
	PollInterval time.Duration
	// VirtualNodes is the ring vnode count; zero selects
	// DefaultVirtualNodes. Every party in one cluster must use one value.
	VirtualNodes int
	// HTTPTimeout bounds each config fetch; zero selects 2 s.
	HTTPTimeout time.Duration
	// Telemetry, when non-nil, registers the client's ring-epoch gauge and
	// refresh counters.
	Telemetry *telemetry.Registry
}

// Client tracks the cluster's current routing view. The view swaps
// atomically at epoch boundaries: a party that grabs View() once routes an
// entire batch against one consistent epoch.
type Client struct {
	cfg  ClientConfig
	http *http.Client

	view atomic.Pointer[View]

	refreshes    *telemetry.Counter
	refreshFails *telemetry.Counter

	mu     sync.Mutex
	done   chan struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewClient builds a client and performs the initial config fetch (a
// cluster party cannot route without a view, so construction fails if the
// router is unreachable). With PollInterval >= 0 a background refresher
// keeps the view current until Close.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.RouterURL == "" {
		return nil, fmt.Errorf("cluster: empty router URL")
	}
	to := cfg.HTTPTimeout
	if to <= 0 {
		to = 2 * time.Second
	}
	c := &Client{
		cfg:  cfg,
		http: &http.Client{Timeout: to},
		done: make(chan struct{}),
	}
	if reg := cfg.Telemetry; reg != nil {
		c.refreshes = reg.Counter("cluster_config_refreshes_total")
		c.refreshFails = reg.Counter("cluster_config_refresh_failures_total")
		reg.GaugeFunc("cluster_ring_epoch", func() float64 {
			return float64(c.View().Epoch())
		})
		reg.GaugeFunc("cluster_ring_nodes", func() float64 {
			return float64(c.View().Ring().Size())
		})
	}
	if err := c.Refresh(); err != nil {
		return nil, err
	}
	if cfg.PollInterval >= 0 {
		interval := cfg.PollInterval
		if interval == 0 {
			interval = DefaultPollInterval
		}
		c.wg.Add(1)
		go c.poll(interval)
	}
	return c, nil
}

// NewStaticClient builds a client pinned to a fixed config — no router, no
// polling. In-process wiring (tests, the launcher's own shards) and
// single-server deployments use it; Refresh is a no-op.
func NewStaticClient(cfg Config, vnodes int) (*Client, error) {
	view, err := NewView(cfg, vnodes)
	if err != nil {
		return nil, err
	}
	c := &Client{done: make(chan struct{})}
	c.view.Store(view)
	return c, nil
}

// View returns the current routing view. Never nil after construction.
func (c *Client) View() *View { return c.view.Load() }

// Epoch returns the current config epoch.
func (c *Client) Epoch() uint64 { return c.View().Epoch() }

// Refresh fetches the router config once and swaps the view if the epoch
// advanced. Static clients return nil without fetching. Relays call this
// from reconnect paths so a redial never targets a shard the cluster
// already evicted.
func (c *Client) Refresh() error {
	if c.cfg.RouterURL == "" {
		return nil
	}
	cfg, err := FetchConfig(c.http, c.cfg.RouterURL)
	if err != nil {
		c.refreshFails.Inc()
		return err
	}
	c.refreshes.Inc()
	cur := c.view.Load()
	if cur != nil && cfg.Epoch <= cur.Epoch() {
		return nil // never step an epoch backwards
	}
	view, err := NewView(cfg, c.cfg.VirtualNodes)
	if err != nil {
		c.refreshFails.Inc()
		return err
	}
	c.view.Store(view)
	return nil
}

// FetchConfig GETs and validates baseURL + "/cluster/config".
func FetchConfig(hc *http.Client, baseURL string) (Config, error) {
	resp, err := hc.Get(baseURL + "/cluster/config")
	if err != nil {
		return Config{}, fmt.Errorf("cluster: config fetch: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return Config{}, fmt.Errorf("cluster: config fetch: %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return Config{}, fmt.Errorf("cluster: config read: %w", err)
	}
	return UnmarshalConfig(data)
}

// poll refreshes the view until Close.
func (c *Client) poll(interval time.Duration) {
	defer c.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			// A transient router outage keeps the last good view: routing
			// degrades to a stale epoch, never to no epoch.
			_ = c.Refresh()
		}
	}
}

// Close stops the background refresher.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.done)
	c.mu.Unlock()
	c.wg.Wait()
}
