// Package hbmsg models instant-messaging heartbeat traffic: the heartbeat
// messages themselves, the per-app profiles the paper reports (period, size,
// expiry), and the mixed heartbeat/data traffic generator that reproduces
// the Table I heartbeat proportions.
package hbmsg

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// DeviceID identifies a smartphone in the system.
type DeviceID string

// Heartbeat is one keep-alive message. A heartbeat does not require a reply;
// it only resets the IM server's expiration timer for its sender
// (Section II-A).
type Heartbeat struct {
	// App is the profile name that produced the heartbeat.
	App string
	// Src is the originating device.
	Src DeviceID
	// Seq is the per-device sequence number.
	Seq uint64
	// Origin is the virtual instant the heartbeat was generated.
	Origin time.Duration
	// Expiry is how long after Origin the message remains useful (T_k in
	// Algorithm 1). Past the deadline, forwarding it no longer keeps the
	// sender online.
	Expiry time.Duration
	// Size is the wire size in bytes.
	Size int
}

// Deadline returns the absolute instant by which the heartbeat must reach
// the server.
func (h Heartbeat) Deadline() time.Duration { return h.Origin + h.Expiry }

// Expired reports whether the heartbeat is useless at instant now.
func (h Heartbeat) Expired(now time.Duration) bool { return now > h.Deadline() }

// String implements fmt.Stringer.
func (h Heartbeat) String() string {
	return fmt.Sprintf("%s/%s#%d(%dB, origin %v, expiry %v)",
		h.Src, h.App, h.Seq, h.Size, h.Origin, h.Expiry)
}

// AppProfile describes one IM app's traffic behaviour. Periods and sizes for
// WeChat, WhatsApp and QQ are the measurements quoted in Section II-A; the
// heartbeat proportions are Table I.
type AppProfile struct {
	// Name identifies the app.
	Name string
	// Period is the heartbeat interval.
	Period time.Duration
	// Size is the heartbeat size in bytes.
	Size int
	// ExpiryFactor scales Period into the per-message expiration time T_k.
	// The paper constrains delay to T ("although it is usually set as 3T
	// for commercial apps, such as WeChat").
	ExpiryFactor float64
	// HeartbeatShare is the fraction of the app's total messages that are
	// heartbeats (Table I).
	HeartbeatShare float64
	// DataMsgSize is the mean size of a non-heartbeat message, for the
	// traffic-mix generator.
	DataMsgSize int
}

// Expiry returns the per-message expiration time T_k.
func (p AppProfile) Expiry() time.Duration {
	return time.Duration(float64(p.Period) * p.ExpiryFactor)
}

// HeartbeatsPerHour returns the heartbeat rate implied by the period.
func (p AppProfile) HeartbeatsPerHour() float64 {
	if p.Period <= 0 {
		return 0
	}
	return float64(time.Hour) / float64(p.Period)
}

// DataMsgsPerHour returns the data-message rate that yields the profile's
// Table I heartbeat share: share = hb / (hb + data).
func (p AppProfile) DataMsgsPerHour() float64 {
	if p.HeartbeatShare <= 0 || p.HeartbeatShare >= 1 {
		return 0
	}
	hb := p.HeartbeatsPerHour()
	return hb * (1 - p.HeartbeatShare) / p.HeartbeatShare
}

// Validate reports whether the profile is usable.
func (p AppProfile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("hbmsg: empty profile name")
	}
	if p.Period <= 0 {
		return fmt.Errorf("hbmsg: %s: period must be positive, got %v", p.Name, p.Period)
	}
	if p.Size <= 0 {
		return fmt.Errorf("hbmsg: %s: size must be positive, got %d", p.Name, p.Size)
	}
	if p.ExpiryFactor <= 0 {
		return fmt.Errorf("hbmsg: %s: expiry factor must be positive, got %v", p.Name, p.ExpiryFactor)
	}
	if p.HeartbeatShare < 0 || p.HeartbeatShare >= 1 {
		return fmt.Errorf("hbmsg: %s: heartbeat share must be in [0,1), got %v", p.Name, p.HeartbeatShare)
	}
	return nil
}

// Heartbeat builds heartbeat #seq from device src generated at origin.
func (p AppProfile) Heartbeat(src DeviceID, seq uint64, origin time.Duration) Heartbeat {
	return Heartbeat{
		App:    p.Name,
		Src:    src,
		Seq:    seq,
		Origin: origin,
		Expiry: p.Expiry(),
		Size:   p.Size,
	}
}

// WeChat returns the WeChat profile: 270 s period, 74 B heartbeats, 50 %
// heartbeat share (Section II-A and Table I).
func WeChat() AppProfile {
	return AppProfile{
		Name: "WeChat", Period: 270 * time.Second, Size: 74,
		ExpiryFactor: 1, HeartbeatShare: 0.50, DataMsgSize: 900,
	}
}

// WhatsApp returns the WhatsApp profile (240 s period, 66 B heartbeats,
// 61.9 % heartbeat share).
func WhatsApp() AppProfile {
	return AppProfile{
		Name: "WhatsApp", Period: 240 * time.Second, Size: 66,
		ExpiryFactor: 1, HeartbeatShare: 0.619, DataMsgSize: 750,
	}
}

// QQ returns the QQ profile (300 s period, 378 B heartbeats, 52.6 %
// heartbeat share).
func QQ() AppProfile {
	return AppProfile{
		Name: "QQ", Period: 300 * time.Second, Size: 378,
		ExpiryFactor: 1, HeartbeatShare: 0.526, DataMsgSize: 800,
	}
}

// Facebook returns the Facebook Messenger profile: 48.4 % heartbeat share
// (Table I); the paper does not quote its period and size, so typical MQTT
// keep-alive parameters are substituted.
func Facebook() AppProfile {
	return AppProfile{
		Name: "Facebook", Period: 300 * time.Second, Size: 100,
		ExpiryFactor: 1, HeartbeatShare: 0.484, DataMsgSize: 1000,
	}
}

// Diagnostics returns a periodic diagnostics-report profile. The paper's
// conclusion extends the framework to any periodic message that is "small
// in size and short in duration, [doesn't] need to reply, [is]
// delay-tolerant" — app telemetry pings fit exactly, with the commercial
// 3× delay tolerance.
func Diagnostics() AppProfile {
	return AppProfile{
		Name: "Diagnostics", Period: 600 * time.Second, Size: 120,
		ExpiryFactor: 3, HeartbeatShare: 0.9, DataMsgSize: 400,
	}
}

// AdRefresh returns a periodic advertisement-refresh profile, the other
// extension example the paper's conclusion names.
func AdRefresh() AppProfile {
	return AppProfile{
		Name: "AdRefresh", Period: 900 * time.Second, Size: 200,
		ExpiryFactor: 3, HeartbeatShare: 0.9, DataMsgSize: 600,
	}
}

// StandardHeartbeat returns the generic 54 B reference heartbeat profile the
// paper uses in its energy experiments (Section V-A).
func StandardHeartbeat() AppProfile {
	return AppProfile{
		Name: "Standard", Period: 270 * time.Second, Size: 54,
		ExpiryFactor: 1, HeartbeatShare: 0.5, DataMsgSize: 900,
	}
}

// Apps returns the Table I app profiles in the paper's column order.
func Apps() []AppProfile {
	return []AppProfile{WeChat(), WhatsApp(), QQ(), Facebook()}
}

// TrafficCounts summarizes a generated message stream.
type TrafficCounts struct {
	Heartbeats int
	DataMsgs   int
}

// Total returns the total message count.
func (c TrafficCounts) Total() int { return c.Heartbeats + c.DataMsgs }

// HeartbeatShare returns the observed heartbeat fraction.
func (c TrafficCounts) HeartbeatShare() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.Heartbeats) / float64(c.Total())
}

// GenerateTraffic simulates the app's message stream over the given
// duration: heartbeats strictly periodic, data messages Poisson at the rate
// implied by the Table I share. The result's HeartbeatShare converges to the
// profile's share as duration grows.
func (p AppProfile) GenerateTraffic(duration time.Duration, rng *rand.Rand) (TrafficCounts, error) {
	if err := p.Validate(); err != nil {
		return TrafficCounts{}, err
	}
	if duration <= 0 {
		return TrafficCounts{}, fmt.Errorf("hbmsg: duration must be positive, got %v", duration)
	}
	if rng == nil {
		return TrafficCounts{}, fmt.Errorf("hbmsg: nil rng")
	}
	var c TrafficCounts
	c.Heartbeats = int(duration / p.Period)
	rate := p.DataMsgsPerHour() / float64(time.Hour) // msgs per ns
	if rate > 0 {
		// Poisson arrivals via exponential inter-arrival times.
		at := time.Duration(0)
		for {
			gap := time.Duration(rng.ExpFloat64() / rate)
			if gap <= 0 {
				gap = 1
			}
			at += gap
			if at > duration {
				break
			}
			c.DataMsgs++
		}
	}
	return c, nil
}

// ExpectedShareError returns |observed − table| for a generated stream, used
// by the Table I experiment to report reproduction error.
func (p AppProfile) ExpectedShareError(c TrafficCounts) float64 {
	return math.Abs(c.HeartbeatShare() - p.HeartbeatShare)
}
