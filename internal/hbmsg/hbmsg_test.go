package hbmsg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPaperAppParameters(t *testing.T) {
	// Section II-A: "heartbeat messages of QQ, WeChat, and WhatsApp are
	// sent every 300, 270, and 240 seconds. Their sizes are 378, 74 and
	// 66 Bytes."
	tests := []struct {
		p          AppProfile
		wantPeriod time.Duration
		wantSize   int
		wantShare  float64
	}{
		{WeChat(), 270 * time.Second, 74, 0.50},
		{WhatsApp(), 240 * time.Second, 66, 0.619},
		{QQ(), 300 * time.Second, 378, 0.526},
		{Facebook(), 300 * time.Second, 100, 0.484},
	}
	for _, tt := range tests {
		t.Run(tt.p.Name, func(t *testing.T) {
			if tt.p.Period != tt.wantPeriod {
				t.Errorf("period = %v, want %v", tt.p.Period, tt.wantPeriod)
			}
			if tt.p.Size != tt.wantSize {
				t.Errorf("size = %d, want %d", tt.p.Size, tt.wantSize)
			}
			if tt.p.HeartbeatShare != tt.wantShare {
				t.Errorf("share = %v, want %v", tt.p.HeartbeatShare, tt.wantShare)
			}
			if err := tt.p.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

func TestAppsOrder(t *testing.T) {
	apps := Apps()
	wantNames := []string{"WeChat", "WhatsApp", "QQ", "Facebook"}
	if len(apps) != len(wantNames) {
		t.Fatalf("Apps() returned %d profiles, want %d", len(apps), len(wantNames))
	}
	for i, name := range wantNames {
		if apps[i].Name != name {
			t.Errorf("Apps()[%d] = %q, want %q", i, apps[i].Name, name)
		}
	}
}

func TestStandardHeartbeatSize(t *testing.T) {
	// Section V-A uses 54 B as the standard heartbeat size.
	if got := StandardHeartbeat().Size; got != 54 {
		t.Fatalf("standard size = %d, want 54", got)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*AppProfile)
	}{
		{"empty name", func(p *AppProfile) { p.Name = "" }},
		{"zero period", func(p *AppProfile) { p.Period = 0 }},
		{"zero size", func(p *AppProfile) { p.Size = 0 }},
		{"zero expiry factor", func(p *AppProfile) { p.ExpiryFactor = 0 }},
		{"share of 1", func(p *AppProfile) { p.HeartbeatShare = 1 }},
		{"negative share", func(p *AppProfile) { p.HeartbeatShare = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := WeChat()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("invalid profile accepted")
			}
		})
	}
}

func TestHeartbeatConstruction(t *testing.T) {
	p := WeChat()
	hb := p.Heartbeat("ue-1", 7, 100*time.Second)
	if hb.App != "WeChat" || hb.Src != "ue-1" || hb.Seq != 7 {
		t.Fatalf("heartbeat fields wrong: %v", hb)
	}
	if hb.Size != 74 {
		t.Fatalf("size = %d, want 74", hb.Size)
	}
	if hb.Expiry != p.Period {
		t.Fatalf("expiry = %v, want period %v (factor 1)", hb.Expiry, p.Period)
	}
	if hb.Deadline() != 100*time.Second+p.Period {
		t.Fatalf("deadline = %v", hb.Deadline())
	}
}

func TestExpired(t *testing.T) {
	hb := Heartbeat{Origin: 10 * time.Second, Expiry: 5 * time.Second}
	if hb.Expired(14 * time.Second) {
		t.Fatal("expired before deadline")
	}
	if hb.Expired(15 * time.Second) {
		t.Fatal("expired exactly at deadline (deadline is inclusive)")
	}
	if !hb.Expired(15*time.Second + 1) {
		t.Fatal("not expired after deadline")
	}
}

func TestExpiryFactorScales(t *testing.T) {
	p := WeChat()
	p.ExpiryFactor = 3 // commercial apps tolerate 3T
	if got, want := p.Expiry(), 3*270*time.Second; got != want {
		t.Fatalf("expiry = %v, want %v", got, want)
	}
}

func TestHeartbeatsPerHour(t *testing.T) {
	if got := WeChat().HeartbeatsPerHour(); math.Abs(got-13.333) > 0.01 {
		t.Fatalf("WeChat heartbeats/hour = %v, want ≈13.33", got)
	}
	var zero AppProfile
	if got := zero.HeartbeatsPerHour(); got != 0 {
		t.Fatalf("zero profile rate = %v, want 0", got)
	}
}

func TestDataMsgsPerHourMatchesShare(t *testing.T) {
	for _, p := range Apps() {
		hb := p.HeartbeatsPerHour()
		data := p.DataMsgsPerHour()
		share := hb / (hb + data)
		if math.Abs(share-p.HeartbeatShare) > 1e-9 {
			t.Errorf("%s: implied share %v, want %v", p.Name, share, p.HeartbeatShare)
		}
	}
}

func TestGenerateTrafficReproducesTable1(t *testing.T) {
	// Table I: heartbeat share per app. A week of traffic should land
	// within a few points of the table.
	rng := rand.New(rand.NewSource(17))
	for _, p := range Apps() {
		c, err := p.GenerateTraffic(7*24*time.Hour, rng)
		if err != nil {
			t.Fatalf("%s: GenerateTraffic: %v", p.Name, err)
		}
		if got := p.ExpectedShareError(c); got > 0.03 {
			t.Errorf("%s: share %v vs table %v (err %.3f)",
				p.Name, c.HeartbeatShare(), p.HeartbeatShare, got)
		}
	}
}

func TestGenerateTrafficValidation(t *testing.T) {
	p := WeChat()
	rng := rand.New(rand.NewSource(1))
	if _, err := p.GenerateTraffic(0, rng); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := p.GenerateTraffic(time.Hour, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	bad := p
	bad.Period = 0
	if _, err := bad.GenerateTraffic(time.Hour, rng); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestGenerateTrafficDeterministic(t *testing.T) {
	p := QQ()
	a, err := p.GenerateTraffic(24*time.Hour, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("GenerateTraffic: %v", err)
	}
	b, err := p.GenerateTraffic(24*time.Hour, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("GenerateTraffic: %v", err)
	}
	if a != b {
		t.Fatalf("same seed produced %+v vs %+v", a, b)
	}
}

func TestTrafficCountsShare(t *testing.T) {
	c := TrafficCounts{Heartbeats: 3, DataMsgs: 1}
	if got := c.HeartbeatShare(); got != 0.75 {
		t.Fatalf("share = %v, want 0.75", got)
	}
	var empty TrafficCounts
	if got := empty.HeartbeatShare(); got != 0 {
		t.Fatalf("empty share = %v, want 0", got)
	}
}

// TestQuickDeadlineConsistency property-checks Deadline/Expired coherence.
func TestQuickDeadlineConsistency(t *testing.T) {
	prop := func(originMs, expiryMs uint32, probeMs uint32) bool {
		hb := Heartbeat{
			Origin: time.Duration(originMs) * time.Millisecond,
			Expiry: time.Duration(expiryMs) * time.Millisecond,
		}
		probe := time.Duration(probeMs) * time.Millisecond
		if hb.Expired(probe) != (probe > hb.Deadline()) {
			return false
		}
		return hb.Deadline() == hb.Origin+hb.Expiry
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(10))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTrafficShareConverges property-checks that over long horizons the
// generated share lands near the profile share for arbitrary valid shares.
func TestQuickTrafficShareConverges(t *testing.T) {
	prop := func(sharePct uint8, seed int64) bool {
		share := 0.2 + float64(sharePct%60)/100 // 0.20 .. 0.79
		p := AppProfile{
			Name: "prop", Period: 100 * time.Second, Size: 54,
			ExpiryFactor: 1, HeartbeatShare: share, DataMsgSize: 500,
		}
		c, err := p.GenerateTraffic(14*24*time.Hour, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		return p.ExpectedShareError(c) < 0.05
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
